//! Determinism lint for the simulation-path crates.
//!
//! The whole value of the simulator is bit-reproducible runs: same seed,
//! same event trace, same histograms. That property is global — one
//! `Instant::now()` or one iterated `HashMap` anywhere in the event path
//! silently breaks it, and nothing in the type system objects. This crate
//! is the guard rail: a fast, dependency-free static pass over the
//! sim-path crates that rejects the handful of constructs known to
//! smuggle nondeterminism in.
//!
//! The engine has three layers:
//!
//! * [`lexer`] — a small real Rust lexer (raw strings, nested comments,
//!   char-vs-lifetime, byte literals). Needle rules match against its
//!   stripped text; structural rules consume its token stream.
//! * [`items`] + [`graph`] — a workspace item scanner (fn/impl/mod) and
//!   a conservative name-based call graph. They power `--reachability`
//!   mode (a forbidden construct is only a violation if the event path
//!   can reach it) and the `allow-reentry` check (sanctioned allow-path
//!   code must not be re-entered from per-event code).
//! * [`rules`] — the needle table plus structural families the old
//!   line pass could not express: `float-order`, `truncating-cast`,
//!   `stale-suppression`.
//!
//! Legitimate exceptions are recorded in-place with a
//! `// lint: <rule-id> — why this is sound` comment; the
//! `stale-suppression` rule reports any such comment whose target no
//! longer fires, so justifications cannot rot silently.
//!
//! Run it as `cargo run -p fgmon-lint -- check`.

pub mod graph;
pub mod items;
pub mod lexer;
pub mod rules;

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

pub use rules::{Rule, RuleInfo, RULES, STRUCTURAL_RULES};

/// Crates whose `src/` trees run inside (or construct) the simulation and
/// therefore must be deterministic. Harness crates (`bench`) and the
/// vendored compat shims are exempt.
pub const SIM_CRATES: &[&str] = &[
    "sim", "types", "net", "os", "core", "balancer", "cluster", "workload", "ganglia", "chaos",
];

/// One violation found in a source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (see [`rules::RULES`] and [`rules::STRUCTURAL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The offending raw source line, trimmed.
    pub snippet: String,
    /// The rule's suggested fix.
    pub suggestion: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}\n    help: {}",
            self.path, self.line, self.rule, self.snippet, self.suggestion
        )
    }
}

/// Scan configuration.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScanOptions {
    /// When set, needle/structural findings inside functions the call
    /// graph cannot reach from a sim entry point (`Engine::run*`/`step`,
    /// `Cluster::run*`, `on_*` handlers, `main`) are dropped. Findings
    /// outside any fn (imports, statics) are always kept, as are
    /// `stale-suppression` and `allow-reentry`.
    pub reachability: bool,
}

/// One source file handed to [`analyze`]: the workspace-relative label
/// (used for reports and `allow_paths` matching) plus its content.
pub struct SourceFile {
    pub label: String,
    pub source: String,
}

/// Compute which lines fall inside `#[cfg(test)]`-gated regions: the
/// attribute line itself through the close of the brace block that
/// follows it (a `mod tests { ... }`, a gated `fn`, etc.).
fn cfg_test_lines(code_lines: &[&str]) -> Vec<bool> {
    let mut skip = vec![false; code_lines.len()];
    let mut i = 0;
    while i < code_lines.len() {
        if !code_lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        // Skip from the attribute to the end of the next brace block.
        let mut depth = 0usize;
        let mut seen_open = false;
        let mut j = i;
        while j < code_lines.len() {
            skip[j] = true;
            for c in code_lines[j].chars() {
                match c {
                    '{' => {
                        depth += 1;
                        seen_open = true;
                    }
                    '}' => depth = depth.saturating_sub(1),
                    _ => {}
                }
            }
            if seen_open && depth == 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    skip
}

/// Is the finding on `line_idx` suppressed? A suppression is a comment
/// containing `lint: <rule-id>` either on the finding line itself or in
/// the contiguous run of comment/attribute lines directly above it (so a
/// multi-line justification works). Only *comment* text counts — a
/// `lint:` inside a string literal is not a justification. The
/// `allow-attr` rule accepts any `lint:` comment, since its whole demand
/// is "write one".
fn is_suppressed(raw_lines: &[&str], comments: &[String], line_idx: usize, rule_id: &str) -> bool {
    let hits = |j: usize| {
        comments.get(j).is_some_and(|c| {
            c.contains("lint:") && (rule_id == "allow-attr" || c.contains(rule_id))
        })
    };
    if hits(line_idx) {
        return true;
    }
    let mut j = line_idx;
    while j > 0 {
        j -= 1;
        let t = raw_lines.get(j).map_or("", |l| l.trim_start());
        if !(t.starts_with("//") || t.starts_with("#[") || t.starts_with("#![")) {
            break;
        }
        if hits(j) {
            return true;
        }
    }
    false
}

/// Analyze a set of files as one workspace: per-file needle and
/// structural rules, then the cross-file graph passes. Findings come
/// back grouped by file (input order), sorted by line within a file.
pub fn analyze(files: &[SourceFile], opts: &ScanOptions) -> Vec<Finding> {
    let mut lexed_items: Vec<(lexer::Lexed, items::FileItems)> = Vec::new();
    let mut whole_test: Vec<bool> = Vec::new();
    for f in files {
        let lexed = lexer::lex(&f.source);
        let mut its = items::scan_items(&lexed.toks);
        // Whole files gated to test builds (e.g. in-crate proptest
        // modules) never run in the sim path: no findings, no graph
        // nodes.
        let wt = lexed.stripped.lines().any(|l| l.contains("#![cfg(test)]"));
        if wt {
            its.fns.clear();
        }
        whole_test.push(wt);
        lexed_items.push((lexed, its));
    }

    let g = graph::CallGraph::build(&lexed_items);
    let event_live = g.reachable(&lexed_items, graph::event_root);
    let reach_live = if opts.reachability {
        Some(g.reachable(&lexed_items, graph::reach_root))
    } else {
        None
    };

    let mut per_file: Vec<Vec<Finding>> = files.iter().map(|_| Vec::new()).collect();
    for (fi, f) in files.iter().enumerate() {
        if whole_test[fi] {
            continue;
        }
        let (lexed, its) = &lexed_items[fi];
        let raw_lines: Vec<&str> = f.source.lines().collect();
        let code_lines = lexed.code_lines();
        let skip = cfg_test_lines(&code_lines);
        let skipped = |idx: usize| skip.get(idx).copied().unwrap_or(false);

        // Raw matches — pre-suppression, pre-allow-path — shared by the
        // real findings and the stale-suppression pass (a justified
        // construct in its sanctioned home still keeps its comment
        // fresh).
        let mut raw: BTreeSet<(&'static str, usize)> = BTreeSet::new();
        for (idx, code) in code_lines.iter().enumerate() {
            if skipped(idx) {
                continue;
            }
            for rule in rules::RULES {
                if rule.needles.iter().any(|n| rules::line_matches(code, n)) {
                    raw.insert((rule.id, idx));
                }
            }
        }
        for line0 in rules::float_order(lexed, its) {
            if !skipped(line0) {
                raw.insert(("float-order", line0));
            }
        }
        for line0 in rules::truncating_cast(&lexed.toks) {
            if !skipped(line0) {
                raw.insert(("truncating-cast", line0));
            }
        }

        let snippet = |idx: usize| raw_lines.get(idx).unwrap_or(&"").trim().to_string();

        for &(id, idx) in &raw {
            if rules::allow_paths_for(id)
                .iter()
                .any(|p| f.label.contains(p))
            {
                continue;
            }
            if is_suppressed(&raw_lines, &lexed.comments, idx, id) {
                continue;
            }
            if let Some(live) = &reach_live {
                if let Some(ii) = its.fn_at_line(idx) {
                    if !live.contains(&(fi, ii)) {
                        continue;
                    }
                }
            }
            per_file[fi].push(Finding {
                rule: id,
                path: f.label.clone(),
                line: idx + 1,
                snippet: snippet(idx),
                suggestion: rules::suggestion_for(id),
            });
        }

        for idx in rules::stale_suppression(&raw_lines, &code_lines, &lexed.comments, &skip, &raw) {
            per_file[fi].push(Finding {
                rule: "stale-suppression",
                path: f.label.clone(),
                line: idx + 1,
                snippet: snippet(idx),
                suggestion: rules::suggestion_for("stale-suppression"),
            });
        }
    }

    // allow-reentry: allow-path files are sanctioned *homes*, not
    // sanctioned *entry points*. Any fn there that uses the rule's
    // construct and is reachable from the event path gets reported.
    for rule in rules::RULES {
        if rule.allow_paths.is_empty() {
            continue;
        }
        for (fi, f) in files.iter().enumerate() {
            if whole_test[fi] || !rule.allow_paths.iter().any(|p| f.label.contains(p)) {
                continue;
            }
            let (lexed, its) = &lexed_items[fi];
            let raw_lines: Vec<&str> = f.source.lines().collect();
            let code_lines = lexed.code_lines();
            for (ii, fun) in its.fns.iter().enumerate() {
                if fun.cfg_test || fun.body_toks.is_empty() {
                    continue;
                }
                if !event_live.contains(&(fi, ii)) {
                    continue;
                }
                let uses = (fun.lines.0..=fun.lines.1).any(|l| {
                    code_lines
                        .get(l)
                        .is_some_and(|cl| rule.needles.iter().any(|n| rules::line_matches(cl, n)))
                });
                if !uses {
                    continue;
                }
                if is_suppressed(&raw_lines, &lexed.comments, fun.lines.0, "allow-reentry") {
                    continue;
                }
                per_file[fi].push(Finding {
                    rule: "allow-reentry",
                    path: f.label.clone(),
                    line: fun.lines.0 + 1,
                    snippet: raw_lines.get(fun.lines.0).unwrap_or(&"").trim().to_string(),
                    suggestion: rules::suggestion_for("allow-reentry"),
                });
            }
        }
    }

    let mut out = Vec::new();
    for mut v in per_file {
        v.sort_by_key(|f| (f.line, rules::rule_rank(f.rule)));
        out.append(&mut v);
    }
    out
}

/// Scan one file's source in isolation (no cross-file graph edges).
/// `path_label` is the workspace-relative path used both for reports and
/// for `allow_paths` matching.
pub fn scan_source(path_label: &str, source: &str) -> Vec<Finding> {
    analyze(
        &[SourceFile {
            label: path_label.to_string(),
            source: source.to_string(),
        }],
        &ScanOptions::default(),
    )
}

/// Recursively collect `.rs` files under `dir`, sorted for deterministic
/// report order.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Load the `crates/<name>/src` trees of the given crates under `root`
/// (the workspace root). Only `src/` is loaded: `tests/`, `benches/`,
/// and the harness crates may use whatever the host offers.
pub fn load_workspace(root: &Path, crates: &[&str]) -> std::io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    for krate in crates {
        let src = root.join("crates").join(krate).join("src");
        let mut files = Vec::new();
        rs_files(&src, &mut files);
        for file in files {
            let source = std::fs::read_to_string(&file)?;
            let label = file
                .strip_prefix(root)
                .unwrap_or(&file)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(SourceFile { label, source });
        }
    }
    Ok(out)
}

/// Scan every sim-path crate under `root` with default options.
pub fn scan_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    scan_workspace_opts(root, &ScanOptions::default())
}

/// Scan every sim-path crate under `root`.
pub fn scan_workspace_opts(root: &Path, opts: &ScanOptions) -> std::io::Result<Vec<Finding>> {
    Ok(analyze(&load_workspace(root, SIM_CRATES)?, opts))
}

/// Minimal JSON string escaping (the report has no exotic content, but
/// snippets can contain quotes and backslashes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render findings as a JSON array (stable field order, one object per
/// finding) for machine consumers.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \
             \"snippet\": \"{}\", \"suggestion\": \"{}\"}}{}\n",
            json_escape(f.rule),
            json_escape(&f.path),
            f.line,
            json_escape(&f.snippet),
            json_escape(f.suggestion),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

/// Render findings as a SARIF 2.1.0 log, the minimal subset CI
/// annotation consumers need: one run, the full rule table in the
/// driver, one `result` per finding with a physical location.
pub fn render_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [{\n");
    out.push_str("    \"tool\": {\"driver\": {\n");
    out.push_str("      \"name\": \"fgmon-lint\",\n");
    out.push_str("      \"rules\": [\n");
    let infos = rules::rule_infos();
    for (i, r) in infos.iter().enumerate() {
        out.push_str(&format!(
            "        {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}, \
             \"help\": {{\"text\": \"{}\"}}}}{}\n",
            json_escape(r.id),
            json_escape(r.summary),
            json_escape(r.suggestion),
            if i + 1 < infos.len() { "," } else { "" }
        ));
    }
    out.push_str("      ]\n");
    out.push_str("    }},\n");
    out.push_str("    \"results\": [\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "      {{\"ruleId\": \"{}\", \"level\": \"error\", \
             \"message\": {{\"text\": \"{}\"}}, \
             \"locations\": [{{\"physicalLocation\": \
             {{\"artifactLocation\": {{\"uri\": \"{}\"}}, \
             \"region\": {{\"startLine\": {}}}}}}}]}}{}\n",
            json_escape(f.rule),
            json_escape(&f.snippet),
            json_escape(&f.path),
            f.line,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("    ]\n");
    out.push_str("  }]\n");
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(src: &str) -> Vec<&'static str> {
        scan_source("crates/os/src/x.rs", src)
            .into_iter()
            .map(|f| f.rule)
            .collect()
    }

    #[test]
    fn flags_wall_clock_and_threads_and_hashes() {
        assert_eq!(
            rules_hit("let t = std::time::Instant::now();"),
            vec!["wall-clock"]
        );
        assert_eq!(
            rules_hit("std::thread::spawn(|| work());"),
            vec!["thread-spawn"]
        );
        assert_eq!(
            rules_hit("let m: HashMap<u32, u32> = HashMap::new();"),
            vec!["hash-collections"]
        );
        assert_eq!(
            rules_hit("let r = DetRng::new(42);"),
            vec!["rng-construction"]
        );
    }

    #[test]
    fn method_spawn_calls_are_threads_too() {
        assert_eq!(
            rules_hit("scope.spawn(|| drain(shard));"),
            vec!["thread-spawn"]
        );
        assert_eq!(
            rules_hit("builder.spawn(move || run())?;"),
            vec!["thread-spawn"]
        );
        // `spawn_thread(` (the simulated OS call) is not an OS thread.
        assert!(rules_hit("os.spawn_thread(name, entry);").is_empty());
    }

    #[test]
    fn interior_mutability_and_unsafe_fire() {
        assert_eq!(
            rules_hit("let c = Cell::new(0u64);"),
            vec!["interior-mutability"]
        );
        assert_eq!(
            rules_hit("load: RefCell<f64>,"),
            vec!["interior-mutability"]
        );
        assert_eq!(
            rules_hit("let p = unsafe { ptr.read() };"),
            vec!["unsafe-block"]
        );
        // Token boundaries: `Cell` must not double-fire inside `RefCell`,
        // and lookalikes stay clean.
        assert!(rules_hit("let c = CellarDoor::new();").is_empty());
    }

    #[test]
    fn token_boundary_spares_lookalikes() {
        // `Instant` must not fire inside `Instantaneous`.
        assert!(rules_hit("/// doc\nfn instantaneous() {}").is_empty());
        assert!(rules_hit("let x = InstantaneousLoad::new();").is_empty());
        // ...but the bare token still fires.
        assert_eq!(rules_hit("use std::time::Instant;"), vec!["wall-clock"]);
    }

    #[test]
    fn comments_and_strings_never_fire() {
        assert!(rules_hit("// HashMap would be wrong here").is_empty());
        assert!(rules_hit("let s = \"HashMap\";").is_empty());
        assert!(rules_hit("/* Instant::now() */ let x = 1;").is_empty());
        assert!(rules_hit("let r = r#\"thread::spawn\"#;").is_empty());
        // Nested block comments and byte strings are opaque too.
        assert!(rules_hit("/* a /* HashMap */ b */ let x = 1;").is_empty());
        assert!(rules_hit("let b = b\"SystemTime\";").is_empty());
    }

    #[test]
    fn cfg_test_regions_are_skipped() {
        let src = "\
fn real() {}
#[cfg(test)]
mod tests {
    use std::collections::HashMap;
    fn t() { let m = HashMap::new(); }
}
fn also_real() { let m = HashMap::new(); }
";
        let hits = rules_hit(src);
        assert_eq!(hits, vec!["hash-collections"]);
        let f = &scan_source("crates/os/src/x.rs", src)[0];
        assert_eq!(f.line, 7);
    }

    #[test]
    fn file_level_cfg_test_skips_everything() {
        let src = "#![cfg(test)]\nuse std::collections::HashMap;\n";
        assert!(rules_hit(src).is_empty());
    }

    #[test]
    fn suppression_on_same_or_preceding_comment_lines() {
        assert!(rules_hit("let r = DetRng::new(s); // lint: rng-construction — root").is_empty());
        let multi = "\
// lint: rng-construction — this is the root RNG; everything
// else forks from it by label.
let r = DetRng::new(seed);
";
        assert!(rules_hit(multi).is_empty());
        // A comment for a *different* rule does not suppress — and is
        // itself reported as stale, since wall-clock never fires here.
        let wrong = "// lint: wall-clock — nope\nlet r = DetRng::new(seed);\n";
        assert_eq!(
            rules_hit(wrong),
            vec!["stale-suppression", "rng-construction"]
        );
        // Suppression does not leak past non-comment lines (and the
        // orphaned comment is flagged stale).
        let gap = "// lint: rng-construction — stale\nlet x = 1;\nlet r = DetRng::new(seed);\n";
        assert_eq!(
            rules_hit(gap),
            vec!["stale-suppression", "rng-construction"]
        );
    }

    #[test]
    fn lint_markers_inside_strings_do_not_suppress() {
        // The old engine matched `lint:` on raw lines, so a string could
        // silence a same-line finding. Comments-only now.
        let src = "let m = HashMap::new(); let s = \"lint: hash-collections\";";
        assert_eq!(rules_hit(src), vec!["hash-collections"]);
    }

    #[test]
    fn payload_clones_need_justification() {
        assert_eq!(
            rules_hit("let copy = packet.payload.clone();"),
            vec!["payload-clone"]
        );
        assert_eq!(rules_hit("send(msg.clone());"), vec!["payload-clone"]);
        // Receiver names that merely *contain* payload still count.
        assert_eq!(
            rules_hit("let p = shared_payload.clone();"),
            vec!["payload-clone"]
        );
        assert!(
            rules_hit("let p = payload.clone(); // lint: payload-clone — Rc refcount bump")
                .is_empty()
        );
        // Unrelated clones stay legal.
        assert!(rules_hit("let v = views.clone();").is_empty());
    }

    #[test]
    fn allow_attr_requires_any_justification() {
        assert_eq!(
            rules_hit("#[allow(dead_code)]\nfn f() {}"),
            vec!["allow-attr"]
        );
        assert!(
            rules_hit("// lint: kept for ffi layout\n#[allow(dead_code)]\nfn f() {}").is_empty()
        );
    }

    #[test]
    fn allow_paths_exempt_the_rng_home() {
        let src = "pub fn new(seed: u64) -> DetRng { DetRng::new(seed) }";
        assert!(scan_source("crates/sim/src/rng.rs", src).is_empty());
        assert!(!scan_source("crates/os/src/x.rs", src).is_empty());
    }

    #[test]
    fn sync_primitives_are_confined_to_the_executor() {
        assert_eq!(
            rules_hit("let m = Mutex::new(queue);"),
            vec!["sync-primitive"]
        );
        assert_eq!(
            rules_hit("let n = AtomicU64::new(0);"),
            vec!["sync-primitive"]
        );
        assert_eq!(
            rules_hit("let (tx, rx) = std::sync::mpsc::channel();"),
            vec!["sync-primitive"]
        );
        // The needle-list gaps the old engine had are closed.
        for narrow in ["AtomicU8", "AtomicU16", "AtomicI32"] {
            assert_eq!(
                rules_hit(&format!("let n = {narrow}::new(0);")),
                vec!["sync-primitive"],
                "{narrow} must fire"
            );
        }
        // The executor and the sweep runner are the sanctioned homes.
        let src = "let heads: Vec<AtomicU64> = Vec::new();";
        assert!(scan_source("crates/sim/src/parallel.rs", src).is_empty());
        assert!(scan_source("crates/cluster/src/sweep.rs", src).is_empty());
        assert!(!scan_source("crates/net/src/fabric.rs", src).is_empty());
        // The watermark executor's primitives — per-shard AtomicU64
        // watermarks and the mailbox's AtomicBool fast-path flag — are
        // sanctioned in the executor, and *only* there: the identical
        // line anywhere else still fires.
        let watermark = "let wm = AtomicU64::new(0); let has_mail = AtomicBool::new(false);";
        assert!(scan_source("crates/sim/src/parallel.rs", watermark).is_empty());
        for stray in [
            "crates/cluster/src/builder.rs",
            "crates/sim/src/engine.rs",
            "crates/sim/src/queue.rs",
        ] {
            let findings = scan_source(stray, watermark);
            assert!(
                !findings.is_empty() && findings.iter().all(|f| f.rule == "sync-primitive"),
                "stray executor atomics in {stray} must fire sync-primitive, got {findings:?}"
            );
        }
        // A justified suppression is honored anywhere...
        let justified = "\
// lint: sync-primitive — result slot written once, read after join
let slot = Mutex::new(None);
";
        assert!(rules_hit(justified).is_empty());
        // ...but a justification for a different rule is not (and rots
        // visibly as a stale suppression).
        let wrong = "// lint: thread-spawn — nope\nlet slot = Mutex::new(None);\n";
        assert_eq!(
            rules_hit(wrong),
            vec!["stale-suppression", "sync-primitive"]
        );
        // Token boundaries: `MutexGuard`-like lookalikes in *other* words
        // do not fire.
        assert!(rules_hit("fn mpscale(x: f64) -> f64 { x }").is_empty());
    }

    #[test]
    fn reachability_mode_drops_dead_code_findings() {
        let src = "\
impl Engine {
    pub fn run_until(&mut self) { self.dispatch(); }
    fn dispatch(&mut self) { live_helper(); }
}
fn live_helper() { let m = HashMap::new(); }
fn dead_helper() { let m = HashMap::new(); }
use std::collections::HashMap;
";
        let files = [SourceFile {
            label: "crates/os/src/x.rs".into(),
            source: src.into(),
        }];
        let strict = analyze(&files, &ScanOptions::default());
        assert_eq!(strict.len(), 3, "both fns + the import in strict mode");
        let reach = analyze(&files, &ScanOptions { reachability: true });
        let lines: Vec<usize> = reach.iter().map(|f| f.line).collect();
        // live_helper (line 5) and the top-level import (line 7) stay;
        // dead_helper (line 6) is dropped.
        assert_eq!(lines, vec![5, 7]);
    }

    #[test]
    fn allow_path_reentered_from_event_path_is_reported() {
        let executor = SourceFile {
            label: "crates/sim/src/parallel.rs".into(),
            source: "\
pub fn run_sharded() { let m = Mutex::new(0); }
pub fn merge_locked(x: u64) -> u64 { let g = Mutex::new(x); x }
"
            .into(),
        };
        let engine = SourceFile {
            label: "crates/sim/src/engine.rs".into(),
            source: "impl Engine { pub fn step(&mut self) { merge_locked(1); } }".into(),
        };
        let findings = analyze(&[executor, engine], &ScanOptions::default());
        // run_sharded is allow-path'd and never called from the event
        // path: clean. merge_locked is re-entered from Engine::step.
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "allow-reentry");
        assert_eq!(findings[0].path, "crates/sim/src/parallel.rs");
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn stale_suppression_reported_via_scan_source() {
        let src = "// lint: wall-clock — long gone\nlet x = 1;\n";
        let f = scan_source("crates/os/src/x.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "stale-suppression");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn json_output_is_wellformed_enough() {
        let f = vec![Finding {
            rule: "wall-clock",
            path: "crates/os/src/x.rs".into(),
            line: 3,
            snippet: "let t = \"x\\y\";".into(),
            suggestion: "use SimTime",
        }];
        let j = render_json(&f);
        assert!(j.starts_with('[') && j.ends_with(']'));
        assert!(j.contains("\\\"x\\\\y\\\""));
        assert!(j.contains("\"line\": 3"));
    }

    #[test]
    fn sarif_output_names_tool_rules_and_locations() {
        let f = vec![Finding {
            rule: "float-order",
            path: "crates/ganglia/src/gmetad.rs".into(),
            line: 81,
            snippet: "agg.sum += v;".into(),
            suggestion: "fix the order",
        }];
        let s = render_sarif(&f);
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"name\": \"fgmon-lint\""));
        // Every rule family is declared in the driver.
        for r in rules::rule_ids() {
            assert!(s.contains(&format!("\"id\": \"{r}\"")), "{r} missing");
        }
        assert!(s.contains("\"startLine\": 81"));
        assert!(s.contains("crates/ganglia/src/gmetad.rs"));
    }
}
