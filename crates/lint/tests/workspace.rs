//! End-to-end checks of the determinism lint: the real workspace must be
//! clean, and a seeded violation must fail the gate with exit code 1.

use std::path::{Path, PathBuf};
use std::process::Command;

use fgmon_lint::{analyze, load_workspace, scan_workspace, scan_workspace_opts, ScanOptions};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

/// Build a minimal fake workspace containing one sim-path file.
fn seed_tree(name: &str, source: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/sim/src");
    std::fs::create_dir_all(&src).expect("create seeded tree");
    std::fs::write(src.join("bad.rs"), source).expect("write seeded file");
    root
}

/// Build a fake workspace from (workspace-relative path, content) pairs.
fn seed_files(name: &str, files: &[(&str, &str)]) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    for (rel, content) in files {
        let path = root.join(rel);
        std::fs::create_dir_all(path.parent().unwrap()).expect("create seeded tree");
        std::fs::write(&path, content).expect("write seeded file");
    }
    root
}

#[test]
fn real_workspace_is_clean() {
    let findings = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "sim-path crates must stay lint-clean, found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_violation_is_found_by_library() {
    let root = seed_tree(
        "lint-lib-seed",
        "pub fn bad() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let findings = scan_workspace(&root).expect("scan seeded tree");
    assert!(!findings.is_empty());
    assert!(findings.iter().all(|f| f.rule == "wall-clock"));
    assert_eq!(findings[0].path, "crates/sim/src/bad.rs");
    assert_eq!(findings[0].line, 1);
}

#[test]
fn cli_exits_nonzero_on_violation_and_zero_on_clean() {
    let bad = seed_tree(
        "lint-cli-bad",
        "use std::collections::HashMap;\npub fn f() { std::thread::spawn(|| ()); }\n",
    );
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--root"])
        .arg(&bad)
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(1), "violations must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hash-collections"));
    assert!(stdout.contains("thread-spawn"));

    // A clean tree (one inert file) passes.
    let clean = seed_tree("lint-cli-clean", "pub fn fine() -> u32 { 1 }\n");
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--root"])
        .arg(&clean)
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(0));

    // And the real workspace passes through the CLI too.
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run fgmon-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace not lint-clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn json_mode_emits_parseable_array() {
    let bad = seed_tree("lint-cli-json", "pub use std::time::SystemTime;\n");
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--json", "--root"])
        .arg(&bad)
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let trimmed = stdout.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));
    assert!(trimmed.contains("\"rule\": \"wall-clock\""));
    assert!(trimmed.contains("\"line\": 1"));
}

/// The tenancy and lock modules ride the sim path and must be scanned:
/// a violation seeded into each of their homes (`types`, `workload`) is
/// found, proving neither crate is exempt.
#[test]
fn tenancy_and_lock_modules_are_scanned() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-tenancy-seed");
    for (dir, file) in [
        ("crates/types/src", "tenancy.rs"),
        ("crates/types/src", "lock.rs"),
        ("crates/workload/src", "locks.rs"),
    ] {
        let d = root.join(dir);
        std::fs::create_dir_all(&d).expect("create seeded tree");
        std::fs::write(
            d.join(file),
            "use std::collections::HashMap;\npub type T = HashMap<u32, u32>;\n",
        )
        .expect("write seeded file");
    }
    let findings = scan_workspace(&root).expect("scan seeded tree");
    for path in [
        "crates/types/src/tenancy.rs",
        "crates/types/src/lock.rs",
        "crates/workload/src/locks.rs",
    ] {
        assert!(
            findings
                .iter()
                .any(|f| f.path == path && f.rule == "hash-collections"),
            "{path} must be covered by the determinism lint"
        );
    }

    // And the real modules exist where the lint looks for them.
    for path in [
        "crates/types/src/tenancy.rs",
        "crates/types/src/lock.rs",
        "crates/workload/src/locks.rs",
    ] {
        assert!(workspace_root().join(path).is_file(), "{path} moved");
    }
}

/// One seeded violation per new rule family, each asserted with its rule
/// id and exact line.
#[test]
fn each_new_rule_family_fires_with_exact_line() {
    let root = seed_files(
        "lint-new-rules-seed",
        &[
            (
                "crates/sim/src/float.rs",
                "pub struct Recorder {\n    total: f64,\n}\nimpl Recorder {\n    pub fn merge(&mut self, xs: &[f64]) {\n        for x in xs {\n            self.total += x;\n        }\n    }\n}\n",
            ),
            (
                "crates/sim/src/cast.rs",
                "pub fn compress(now_nanos: u64) -> u32 {\n    now_nanos as u32\n}\n",
            ),
            (
                "crates/sim/src/cell.rs",
                "pub struct Slot {\n    load: std::cell::RefCell<f64>,\n}\n",
            ),
            (
                "crates/sim/src/unsafe_peek.rs",
                "pub fn peek(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
            ),
            (
                "crates/sim/src/stale.rs",
                "// lint: wall-clock — the Instant this justified is long gone\npub fn fine() -> u32 {\n    1\n}\n",
            ),
            (
                "crates/sim/src/parallel.rs",
                "pub fn shard_merge(v: u64) -> u64 {\n    let _m = std::sync::Mutex::new(v);\n    v\n}\n",
            ),
            (
                "crates/sim/src/engine.rs",
                "pub struct Engine;\nimpl Engine {\n    pub fn step(&mut self) {\n        shard_merge(1);\n    }\n}\n",
            ),
        ],
    );
    let findings = scan_workspace(&root).expect("scan seeded tree");
    let expect: &[(&str, &str, usize)] = &[
        ("float-order", "crates/sim/src/float.rs", 7),
        ("truncating-cast", "crates/sim/src/cast.rs", 2),
        ("interior-mutability", "crates/sim/src/cell.rs", 2),
        ("unsafe-block", "crates/sim/src/unsafe_peek.rs", 2),
        ("stale-suppression", "crates/sim/src/stale.rs", 1),
        // `shard_merge` uses the sanctioned Mutex in an allow-path file,
        // but `Engine::step` re-enters it from the event path.
        ("allow-reentry", "crates/sim/src/parallel.rs", 1),
    ];
    for (rule, path, line) in expect {
        assert!(
            findings
                .iter()
                .any(|f| f.rule == *rule && f.path == *path && f.line == *line),
            "{rule} not reported at {path}:{line}; got:\n{}",
            findings
                .iter()
                .map(|f| f.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
    // No other rule families fire on this tree (the raw Mutex match in
    // parallel.rs stays allow-path'd).
    let mut seen: Vec<&str> = findings.iter().map(|f| f.rule).collect();
    seen.sort_unstable();
    seen.dedup();
    let mut want: Vec<&str> = expect.iter().map(|(r, _, _)| *r).collect();
    want.sort_unstable();
    assert_eq!(seen, want);
}

/// The sync-primitive needle gaps the old engine shipped with are
/// closed: every narrow atomic fires, and the interior-mutability cells
/// get their own rule.
#[test]
fn closed_needle_gaps_each_fire() {
    for (i, (construct, rule)) in [
        ("std::sync::atomic::AtomicU8::new(0)", "sync-primitive"),
        ("std::sync::atomic::AtomicU16::new(0)", "sync-primitive"),
        ("std::sync::atomic::AtomicI32::new(0)", "sync-primitive"),
        ("std::cell::Cell::new(0u64)", "interior-mutability"),
        ("std::cell::RefCell::new(0u64)", "interior-mutability"),
    ]
    .iter()
    .enumerate()
    {
        let root = seed_tree(
            &format!("lint-gap-seed-{i}"),
            &format!("pub fn f() {{ let _x = {construct}; }}\n"),
        );
        let findings = scan_workspace(&root).expect("scan seeded tree");
        assert_eq!(
            findings.len(),
            1,
            "{construct}: expected exactly one finding"
        );
        assert_eq!(findings[0].rule, *rule, "{construct}");
        assert_eq!(findings[0].line, 1);
    }
}

/// Reachability mode: the same forbidden construct is a violation when
/// `Engine::run` can reach it and ignorable when only dead code holds it.
#[test]
fn reachability_mode_distinguishes_live_from_dead() {
    let root = seed_files(
        "lint-reach-seed",
        &[(
            "crates/sim/src/engine.rs",
            "pub struct Engine;\nimpl Engine {\n    pub fn run(&mut self) {\n        hot();\n    }\n}\nfn hot() {\n    let _m: std::collections::HashMap<u32, u32> = Default::default();\n}\nfn cold() {\n    let _m: std::collections::HashMap<u32, u32> = Default::default();\n}\n",
        )],
    );
    let strict = scan_workspace(&root).expect("strict scan");
    assert_eq!(
        strict.len(),
        2,
        "strict mode reports both the live and the dead construct"
    );
    let reach =
        scan_workspace_opts(&root, &ScanOptions { reachability: true }).expect("reachability scan");
    assert_eq!(reach.len(), 1, "reachability mode keeps only the live one");
    assert_eq!(reach[0].rule, "hash-collections");
    assert_eq!(reach[0].line, 8, "the construct inside hot(), not cold()");

    // The CLI flag wires through to the same behavior.
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--reachability", "--json", "--root"])
        .arg(&root)
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(stdout.matches("\"rule\"").count(), 1);
}

/// `ganglia` hosts in-sim services and must be covered by the scan.
#[test]
fn ganglia_crate_is_scanned() {
    assert!(
        fgmon_lint::SIM_CRATES.contains(&"ganglia"),
        "ganglia must be a sim-path crate"
    );
    let root = seed_files(
        "lint-ganglia-seed",
        &[(
            "crates/ganglia/src/bad.rs",
            "use std::collections::HashMap;\n",
        )],
    );
    let findings = scan_workspace(&root).expect("scan seeded tree");
    assert!(
        findings
            .iter()
            .any(|f| f.path == "crates/ganglia/src/bad.rs" && f.rule == "hash-collections"),
        "seeded ganglia violation must be found"
    );
    // And the real crate exists where the lint looks for it.
    assert!(workspace_root()
        .join("crates/ganglia/src/gmetad.rs")
        .is_file());
}

/// The lint passes over its own crate: the engine's needle strings live
/// in string literals and its one wall-clock read (the budget timer) is
/// justified, so a token-accurate scan comes back clean.
#[test]
fn lint_crate_passes_self_scan() {
    let files = load_workspace(&workspace_root(), &["lint"]).expect("load lint crate");
    assert!(!files.is_empty(), "lint sources must load");
    let findings = analyze(&files, &ScanOptions::default());
    assert!(
        findings.is_empty(),
        "fgmon-lint must pass its own scan, found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn sarif_mode_emits_a_valid_looking_log() {
    let bad = seed_tree("lint-cli-sarif", "pub use std::time::SystemTime;\n");
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--format", "sarif", "--root"])
        .arg(&bad)
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("\"version\": \"2.1.0\""));
    assert!(stdout.contains("\"name\": \"fgmon-lint\""));
    assert!(stdout.contains("\"ruleId\": \"wall-clock\""));
    assert!(stdout.contains("\"startLine\": 1"));
    assert!(stdout.contains("crates/sim/src/bad.rs"));
}

#[test]
fn budget_flag_gates_scan_time() {
    // A generous budget passes on the real workspace...
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--budget-ms", "600000", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(0));
    // ...and an impossible 1 ms budget exits 3 even though the tree is
    // clean (the full-workspace scan lexes dozens of files).
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--budget-ms", "1", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(3), "budget overrun must exit 3");
    assert!(String::from_utf8_lossy(&out.stderr).contains("budget"));
}

#[test]
fn rules_listing_covers_every_family() {
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .arg("rules")
        .output()
        .expect("run fgmon-lint rules");
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "wall-clock",
        "thread-spawn",
        "sync-primitive",
        "interior-mutability",
        "unsafe-block",
        "hash-collections",
        "rng-construction",
        "payload-clone",
        "allow-attr",
        "float-order",
        "truncating-cast",
        "stale-suppression",
        "allow-reentry",
    ] {
        assert!(stdout.contains(id), "rules listing must mention {id}");
    }
}
