//! End-to-end checks of the determinism lint: the real workspace must be
//! clean, and a seeded violation must fail the gate with exit code 1.

use std::path::{Path, PathBuf};
use std::process::Command;

use fgmon_lint::scan_workspace;

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint sits two levels under the workspace root")
        .to_path_buf()
}

/// Build a minimal fake workspace containing one sim-path file.
fn seed_tree(name: &str, source: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let src = root.join("crates/sim/src");
    std::fs::create_dir_all(&src).expect("create seeded tree");
    std::fs::write(src.join("bad.rs"), source).expect("write seeded file");
    root
}

#[test]
fn real_workspace_is_clean() {
    let findings = scan_workspace(&workspace_root()).expect("scan workspace");
    assert!(
        findings.is_empty(),
        "sim-path crates must stay lint-clean, found:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn seeded_violation_is_found_by_library() {
    let root = seed_tree(
        "lint-lib-seed",
        "pub fn bad() -> std::time::Instant { std::time::Instant::now() }\n",
    );
    let findings = scan_workspace(&root).expect("scan seeded tree");
    assert!(!findings.is_empty());
    assert!(findings.iter().all(|f| f.rule == "wall-clock"));
    assert_eq!(findings[0].path, "crates/sim/src/bad.rs");
    assert_eq!(findings[0].line, 1);
}

#[test]
fn cli_exits_nonzero_on_violation_and_zero_on_clean() {
    let bad = seed_tree(
        "lint-cli-bad",
        "use std::collections::HashMap;\npub fn f() { std::thread::spawn(|| ()); }\n",
    );
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--root"])
        .arg(&bad)
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(1), "violations must fail the gate");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("hash-collections"));
    assert!(stdout.contains("thread-spawn"));

    // A clean tree (one inert file) passes.
    let clean = seed_tree("lint-cli-clean", "pub fn fine() -> u32 { 1 }\n");
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--root"])
        .arg(&clean)
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(0));

    // And the real workspace passes through the CLI too.
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--root"])
        .arg(workspace_root())
        .output()
        .expect("run fgmon-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace not lint-clean:\n{}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn json_mode_emits_parseable_array() {
    let bad = seed_tree("lint-cli-json", "pub use std::time::SystemTime;\n");
    let out = Command::new(env!("CARGO_BIN_EXE_fgmon-lint"))
        .args(["check", "--json", "--root"])
        .arg(&bad)
        .output()
        .expect("run fgmon-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let trimmed = stdout.trim();
    assert!(trimmed.starts_with('[') && trimmed.ends_with(']'));
    assert!(trimmed.contains("\"rule\": \"wall-clock\""));
    assert!(trimmed.contains("\"line\": 1"));
}

/// The tenancy and lock modules ride the sim path and must be scanned:
/// a violation seeded into each of their homes (`types`, `workload`) is
/// found, proving neither crate is exempt.
#[test]
fn tenancy_and_lock_modules_are_scanned() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-tenancy-seed");
    for (dir, file) in [
        ("crates/types/src", "tenancy.rs"),
        ("crates/types/src", "lock.rs"),
        ("crates/workload/src", "locks.rs"),
    ] {
        let d = root.join(dir);
        std::fs::create_dir_all(&d).expect("create seeded tree");
        std::fs::write(
            d.join(file),
            "use std::collections::HashMap;\npub type T = HashMap<u32, u32>;\n",
        )
        .expect("write seeded file");
    }
    let findings = scan_workspace(&root).expect("scan seeded tree");
    for path in [
        "crates/types/src/tenancy.rs",
        "crates/types/src/lock.rs",
        "crates/workload/src/locks.rs",
    ] {
        assert!(
            findings
                .iter()
                .any(|f| f.path == path && f.rule == "hash-collections"),
            "{path} must be covered by the determinism lint"
        );
    }

    // And the real modules exist where the lint looks for them.
    for path in [
        "crates/types/src/tenancy.rs",
        "crates/types/src/lock.rs",
        "crates/workload/src/locks.rs",
    ] {
        assert!(workspace_root().join(path).is_file(), "{path} moved");
    }
}
