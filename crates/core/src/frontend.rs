//! Standalone front-end monitoring process (the micro-benchmark driver).
//!
//! Periodically polls every back-end with the configured scheme and
//! records latency/staleness/accuracy metrics. The application-level
//! experiments embed [`MonitorClient`] in the dispatcher instead.

use fgmon_os::{OsApi, Service};
use fgmon_sim::SimDuration;
use fgmon_types::{ConnId, McastGroup, Payload, RdmaResult, SharedPayload, ThreadId};

use crate::client::{BackendHandle, MonitorClient};

const TOK_POLL: u64 = 0xF00D_0001;

/// A service that does nothing but run the front-end monitoring loop.
pub struct MonitorFrontendService {
    pub client: MonitorClient,
    poll_interval: SimDuration,
    /// Delay before the first poll (staggers concurrent pollers so their
    /// request traffic is not phase-locked).
    pub start_offset: SimDuration,
    /// Stop polling after this many rounds (0 = unlimited).
    pub max_rounds: u64,
    rounds: u64,
}

impl MonitorFrontendService {
    pub fn new(
        scheme: fgmon_types::Scheme,
        want_detail: bool,
        poll_interval: SimDuration,
        backends: Vec<BackendHandle>,
    ) -> Self {
        MonitorFrontendService {
            client: MonitorClient::new(scheme, want_detail, backends),
            poll_interval,
            start_offset: SimDuration::ZERO,
            max_rounds: 0,
            rounds: 0,
        }
    }

    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}

impl Service for MonitorFrontendService {
    fn name(&self) -> &'static str {
        "monitor-frontend"
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        self.client.start(os);
        os.set_timer(self.start_offset + self.poll_interval, TOK_POLL);
    }

    fn on_timer(&mut self, token: u64, os: &mut OsApi<'_, '_>) {
        if token != TOK_POLL {
            return;
        }
        // Resolve expirations before issuing the next round, so a retry
        // budget freed by a timeout is available to this round's polls.
        self.client.check_timeouts(os);
        self.client.poll_all(os);
        self.rounds += 1;
        if self.max_rounds == 0 || self.rounds < self.max_rounds {
            // Re-arm with ±10% jitter: real user-space timers drift, and
            // an exact period phase-locks the samples with every other
            // periodic process in the cluster (tick-aligned calc threads,
            // sibling pollers), which biases what the samples see.
            let jitter = 0.9 + 0.2 * os.rng().f64();
            os.set_timer(self.poll_interval.mul_f64(jitter), TOK_POLL);
        }
    }

    fn on_packet(
        &mut self,
        _tid: Option<ThreadId>,
        conn: ConnId,
        _size: u32,
        payload: Payload,
        os: &mut OsApi<'_, '_>,
    ) {
        self.client.on_packet(conn, &payload, os);
    }

    fn on_rdma_complete(&mut self, token: u64, result: RdmaResult, os: &mut OsApi<'_, '_>) {
        self.client.on_rdma_complete(token, &result, os);
    }

    fn on_mcast(&mut self, _group: McastGroup, payload: SharedPayload, os: &mut OsApi<'_, '_>) {
        self.client.on_mcast(&payload, os);
    }
}
