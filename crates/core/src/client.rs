//! Front-end side: the monitoring client that pulls (or receives) load
//! information from every back-end.
//!
//! [`MonitorClient`] is a *component*, not a service: the standalone
//! micro-benchmark poller ([`crate::frontend::MonitorFrontendService`])
//! and the load-balancing dispatcher both embed one and forward their OS
//! callbacks to it. This mirrors the paper's architecture, where the
//! front-end monitoring process feeds whatever policy consumes the load
//! information.
//!
//! Polling is *pipelined*: the front-end fires a request every interval
//! regardless of whether earlier ones have been answered (bounded by
//! [`MonitorClient::max_outstanding`], the socket-buffer budget). An
//! overloaded back-end therefore accumulates a backlog of monitoring work
//! — the mechanism behind the paper's Figs. 3 and 8 degradations.
//!
//! Accuracy bookkeeping follows the paper's Fig. 5 semantics: a reply
//! stands in for the load "when the front-end asked", so reported-value
//! series are timestamped at *request* time. A slow capture path then
//! shows up directly as deviation from the ground-truth series.

use std::collections::BTreeMap;

use fgmon_os::OsApi;
use fgmon_sim::{HistogramId, Recorder, SeriesId, SimTime};
use fgmon_types::{
    BreakerConfig, BreakerEvent, BreakerState, ChannelHealthStats, CircuitBreaker, ConnId,
    FenceGate, FenceVerdict, LoadSnapshot, McastGroup, NodeId, Payload, RdmaResult, RecordFence,
    RegionData, RegionId, ReplyOutcome, RetryPolicy, RetryTracker, Scheme, TimeoutAction,
};

/// Token namespace for this component's RDMA work requests:
/// `BASE | idx << 32 | seq`.
pub const MON_TOKEN_BASE: u64 = 0x4D4F_4E00_0000_0000;
const MON_TOKEN_MASK: u64 = 0xFFFF_FF00_0000_0000;

/// How the front-end reaches one back-end.
#[derive(Clone, Copy, Debug)]
pub struct BackendHandle {
    pub node: NodeId,
    /// Socket connection (socket schemes).
    pub conn: Option<ConnId>,
    /// Registered region (RDMA schemes).
    pub region: Option<RegionId>,
}

/// The front-end's current knowledge about one back-end.
#[derive(Clone, Copy, Debug, Default)]
pub struct BackendView {
    pub latest: Option<LoadSnapshot>,
    pub received_at: Option<SimTime>,
    /// Requests currently in flight.
    pub outstanding: u32,
    pub polls: u64,
    pub replies: u64,
    /// Poll rounds skipped because the in-flight budget was exhausted.
    pub skipped: u64,
    pub denied: u64,
    /// Polls that exceeded the retry policy's deadline.
    pub timed_out: u64,
    /// Retry attempts issued after timeouts.
    pub retries: u64,
    /// Poll cycles abandoned after exhausting the retry budget.
    pub gave_up: u64,
    /// Replies that arrived after their request had timed out (ignored,
    /// never double-counted).
    pub late_ignored: u64,
    /// The back-end has exceeded the policy's consecutive-failure limit
    /// and should not be routed to until a reply re-admits it.
    pub unreachable: bool,
}

impl BackendView {
    /// Age of the information at `now`, measured from when the *back-end*
    /// produced it (staleness the dispatcher actually suffers).
    pub fn info_age(&self, now: SimTime) -> Option<fgmon_sim::SimDuration> {
        self.latest.map(|s| now.since(s.measured_at))
    }
}

/// Per-backend in-flight tracking. Every request carries a correlation
/// id (socket replies echo it in the payload; RDMA completions carry it
/// in the token), so matching is exact even under loss and reordering.
struct Inflight {
    tracker: RetryTracker,
    /// Send timestamps as `(correlation id, at)` rows, for latency
    /// accounting. At most `max_outstanding` (~16) are in flight per
    /// back-end, so a capacity-retaining Vec with a linear scan beats
    /// per-poll map node churn.
    sent: Vec<(u64, SimTime)>,
    next_seq: u32,
}

impl Inflight {
    fn new(policy: RetryPolicy) -> Self {
        Inflight {
            tracker: RetryTracker::new(policy),
            sent: Vec::new(),
            next_seq: 0,
        }
    }

    fn count(&self) -> usize {
        self.tracker.outstanding()
    }

    fn note_sent(&mut self, req: u64, at: SimTime) {
        self.sent.push((req, at));
    }

    fn take_sent(&mut self, req: u64) -> Option<SimTime> {
        let pos = self.sent.iter().position(|&(r, _)| r == req)?;
        Some(self.sent.swap_remove(pos).1)
    }
}

/// A retry waiting out its backoff before being re-issued.
#[derive(Clone, Copy, Debug)]
struct PendingRetry {
    idx: usize,
    attempt: u32,
    not_before: SimTime,
}

/// Per-backend channel-health state: the circuit breaker deciding which
/// path polls take, the epoch fence rejecting pre-restart records, and
/// the transition counters.
struct Channel {
    /// `None` when the breaker is disabled (legacy behaviour: the primary
    /// path is always used).
    breaker: Option<CircuitBreaker>,
    fence: FenceGate,
    health: ChannelHealthStats,
}

impl Channel {
    fn new(breaker: Option<BreakerConfig>) -> Self {
        Channel {
            breaker: breaker.map(CircuitBreaker::new),
            fence: FenceGate::default(),
            health: ChannelHealthStats::default(),
        }
    }
}

/// Pull/receive load information from a set of back-ends using one scheme.
pub struct MonitorClient {
    scheme: Scheme,
    want_detail: bool,
    backends: Vec<BackendHandle>,
    views: Vec<BackendView>,
    inflight: Vec<Inflight>,
    conn_to_idx: BTreeMap<ConnId, usize>,
    node_to_idx: BTreeMap<NodeId, usize>,
    mcast_group: McastGroup,
    /// Local buffers the back-ends push into (RDMA-write-push scheme),
    /// indexed by backend; registered in [`MonitorClient::start`].
    local_regions: Vec<Option<RegionId>>,
    /// Timeout/retry policy applied to every poll ([`RetryPolicy::OFF`]
    /// by default: legacy wait-forever behaviour).
    policy: RetryPolicy,
    /// Correlation-id counter for socket requests (0 is reserved for
    /// "untracked", as used by foreign clients like gmetad).
    next_req: u64,
    /// Retries waiting out their backoff.
    pending_retries: Vec<PendingRetry>,
    /// Scratch buffers reused by [`MonitorClient::check_timeouts`].
    timeout_scratch: Vec<TimeoutAction>,
    retry_scratch: Vec<PendingRetry>,
    /// Per-backend channel-health state (breaker + fence + counters).
    channels: Vec<Channel>,
    /// Breaker thresholds installed via [`MonitorClient::set_breaker`].
    breaker_cfg: Option<BreakerConfig>,
    /// In-flight request budget per back-end (socket-buffer model).
    pub max_outstanding: usize,
    /// Push per-backend reported-value series into the recorder (accuracy
    /// experiments); off by default to keep large runs lean.
    pub record_series: bool,
    /// Interned latency/staleness histogram handles (lazy, so the key set
    /// matches per-sample formatting exactly).
    lat_id: Option<HistogramId>,
    stale_id: Option<HistogramId>,
    /// Per-backend interned series handles, parallel to `backends`.
    series_ids: Vec<Option<MonSeriesIds>>,
    /// Scratch buffer for coalescing one poll round's RDMA reads into a
    /// single doorbell batch (capacity persists across rounds).
    batch_scratch: Vec<(NodeId, RegionId, u64)>,
    /// Seeded canary mutation for validating the chaos harness: the
    /// client stops deduplicating late and echoed socket replies (the
    /// retry tracker's verdict is overridden in `on_packet`), and the
    /// first provably stale record that consequently reaches the gate
    /// is waved through the fence exactly once. The stale-admission
    /// cross-check in [`MonitorClient::admit_fenced`] is *not*
    /// disabled, so the bug is observable as a `fence_regressions`
    /// increment — which the chaos search must find and shrink.
    #[cfg(feature = "chaos-canary")]
    canary_spent: bool,
}

/// Interned handles for one back-end's reported-value series; formatted
/// once per backend instead of once per accepted reply.
#[derive(Clone, Copy)]
struct MonSeriesIds {
    nthreads: SeriesId,
    cpu_util: SeriesId,
    run_queue: SeriesId,
    pending_irqs: SeriesId,
    pending_cpu: [SeriesId; 2],
    irq_total_cpu: [SeriesId; 2],
}

impl MonitorClient {
    pub fn new(scheme: Scheme, want_detail: bool, backends: Vec<BackendHandle>) -> Self {
        let views = vec![BackendView::default(); backends.len()];
        let series_ids = vec![None; backends.len()];
        let channels = backends.iter().map(|_| Channel::new(None)).collect();
        let inflight = backends
            .iter()
            .map(|_| Inflight::new(RetryPolicy::OFF))
            .collect();
        let conn_to_idx = backends
            .iter()
            .enumerate()
            .filter_map(|(i, b)| b.conn.map(|c| (c, i)))
            .collect();
        let node_to_idx = backends
            .iter()
            .enumerate()
            .map(|(i, b)| (b.node, i))
            .collect();
        MonitorClient {
            scheme,
            want_detail,
            backends,
            views,
            inflight,
            conn_to_idx,
            node_to_idx,
            mcast_group: McastGroup(0),
            local_regions: Vec::new(),
            policy: RetryPolicy::OFF,
            next_req: 0,
            pending_retries: Vec::new(),
            timeout_scratch: Vec::new(),
            retry_scratch: Vec::new(),
            channels,
            breaker_cfg: None,
            max_outstanding: 16,
            record_series: false,
            lat_id: None,
            stale_id: None,
            series_ids,
            batch_scratch: Vec::new(),
            #[cfg(feature = "chaos-canary")]
            canary_spent: false,
        }
    }

    pub fn scheme(&self) -> Scheme {
        self.scheme
    }

    /// Install a timeout/retry policy. Resets per-backend retry state;
    /// call before the first poll.
    pub fn set_retry_policy(&mut self, policy: RetryPolicy) {
        self.policy = policy;
        for fl in &mut self.inflight {
            *fl = Inflight::new(policy);
        }
        self.pending_retries.clear();
    }

    pub fn retry_policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Install the channel-health circuit breaker (one per backend).
    /// Only meaningful for the one-sided schemes — socket schemes have no
    /// lower rung to fall back to. Resets breaker state; call before the
    /// first poll.
    pub fn set_breaker(&mut self, cfg: BreakerConfig) {
        self.breaker_cfg = Some(cfg);
        for ch in &mut self.channels {
            ch.breaker = Some(CircuitBreaker::new(cfg));
        }
    }

    /// Breaker state of backend `idx` (`None` when the breaker is
    /// disabled).
    pub fn breaker_state(&self, idx: usize) -> Option<BreakerState> {
        self.channels
            .get(idx)
            .and_then(|c| c.breaker.as_ref())
            .map(|b| b.state())
    }

    /// Channel-health counters of backend `idx`.
    pub fn health_of(&self, idx: usize) -> &ChannelHealthStats {
        &self.channels[idx].health
    }

    /// Channel-health counters summed over every backend.
    pub fn health_total(&self) -> ChannelHealthStats {
        let mut total = ChannelHealthStats::default();
        for ch in &self.channels {
            total.merge(&ch.health);
        }
        total
    }

    /// Newest boot generation accepted from backend `idx` (fenced
    /// schemes; `None` before the first fenced record).
    pub fn generation_of(&self, idx: usize) -> Option<u32> {
        self.channels[idx].fence.latest().map(|f| f.generation)
    }

    /// Is backend `idx` currently being polled over the fallback socket
    /// path?
    pub fn on_fallback(&self, idx: usize) -> bool {
        self.scheme.is_one_sided()
            && matches!(self.breaker_state(idx), Some(BreakerState::Open { .. }))
    }

    /// Feed a primary-path failure signal into the breaker.
    fn note_failure(&mut self, idx: usize, os: &mut OsApi<'_, '_>) {
        let Some(br) = &mut self.channels[idx].breaker else {
            return;
        };
        let now = os.now();
        // Seeded cool-down jitter (same convention as the poll timers):
        // deterministic per seed, decorrelated across backends.
        let jitter = 0.9 + 0.2 * os.rng().f64();
        match br.on_failure(now, jitter) {
            BreakerEvent::Tripped => self.channels[idx].health.trips += 1,
            BreakerEvent::Reopened => self.channels[idx].health.reopens += 1,
            _ => {}
        }
    }

    /// Feed a primary-path success signal into the breaker.
    fn note_success(&mut self, idx: usize, os: &mut OsApi<'_, '_>) {
        let Some(br) = &mut self.channels[idx].breaker else {
            return;
        };
        if br.on_success(os.now()) == BreakerEvent::Restored {
            self.channels[idx].health.restorations += 1;
        }
    }

    pub fn backend_count(&self) -> usize {
        self.backends.len()
    }

    /// Node id of the i-th backend.
    pub fn backend_node(&self, idx: usize) -> NodeId {
        self.backends[idx].node
    }

    pub fn views(&self) -> &[BackendView] {
        &self.views
    }

    pub fn view_of(&self, node: NodeId) -> Option<&BackendView> {
        self.node_to_idx.get(&node).map(|&i| &self.views[i])
    }

    /// Wire up listening state. Call from the embedding service's
    /// `on_start`.
    ///
    /// For the RDMA-write-push scheme this registers one writable local
    /// buffer per back-end, in backend order — the builder convention the
    /// back-ends' `push_target` configuration relies on.
    pub fn start(&mut self, os: &mut OsApi<'_, '_>) {
        for b in &self.backends {
            if let Some(conn) = b.conn {
                os.listen_direct(conn);
            }
        }
        if self.scheme == Scheme::McastPush {
            os.subscribe_mcast(self.mcast_group);
        }
        if self.scheme == Scheme::RdmaWritePush {
            self.local_regions = (0..self.backends.len())
                .map(|_| Some(os.register_user_region(true)))
                .collect();
        }
        self.intern_metrics(os.recorder());
    }

    /// Intern every metric handle this client will ever record into.
    /// Runs from [`MonitorClient::start`], after the embedder has decided
    /// `record_series`: parallel windows forbid interning new keys
    /// mid-run, and eager interning also keeps the steady-state reply
    /// path free of key formatting.
    pub fn intern_metrics(&mut self, r: &mut Recorder) {
        let label = self.scheme.label();
        self.lat_id
            .get_or_insert_with(|| r.histogram_id(&format!("mon/latency/{label}")));
        self.stale_id
            .get_or_insert_with(|| r.histogram_id(&format!("mon/staleness/{label}")));
        if self.record_series {
            for (idx, b) in self.backends.iter().enumerate() {
                let node = b.node;
                self.series_ids[idx].get_or_insert_with(|| MonSeriesIds {
                    nthreads: r.series_id(&format!("mon/{label}/{node}/nthreads")),
                    cpu_util: r.series_id(&format!("mon/{label}/{node}/cpu_util")),
                    run_queue: r.series_id(&format!("mon/{label}/{node}/run_queue")),
                    pending_irqs: r.series_id(&format!("mon/{label}/{node}/pending_irqs")),
                    pending_cpu: [0, 1].map(|cpu| {
                        r.series_id(&format!("mon/{label}/{node}/pending_irqs_cpu{cpu}"))
                    }),
                    irq_total_cpu: [0, 1]
                        .map(|cpu| r.series_id(&format!("mon/{label}/{node}/irq_total_cpu{cpu}"))),
                });
            }
        }
    }

    /// The local buffer registered for the i-th backend (push scheme).
    pub fn local_region(&self, idx: usize) -> Option<RegionId> {
        self.local_regions.get(idx).copied().flatten()
    }

    /// Issue one round of load requests (no-op for the push scheme).
    ///
    /// Requests pipeline: a new one is fired even while earlier ones are
    /// outstanding, up to [`MonitorClient::max_outstanding`].
    pub fn poll_all(&mut self, os: &mut OsApi<'_, '_>) {
        if self.scheme == Scheme::McastPush {
            return;
        }
        if self.scheme == Scheme::RdmaWritePush {
            // The back-ends push into our local buffers; a poll round is a
            // free local-memory read of each.
            for idx in 0..self.backends.len() {
                let Some(region) = self.local_region(idx) else {
                    continue;
                };
                if let Some(snap) = os.read_local_region(region) {
                    if !snap.checksum_ok() {
                        // The pushed record was bit-corrupted in flight and
                        // DMA'd into our buffer as-is; the stale seal is
                        // detected at read time.
                        self.channels[idx].health.corrupt_rejected += 1;
                        continue;
                    }
                    let fresh = self.views[idx]
                        .latest
                        .map(|old| old.measured_at != snap.measured_at)
                        .unwrap_or(true);
                    if fresh {
                        self.accept(idx, snap, None, os);
                    }
                }
            }
            return;
        }
        // Coalesce the round's RDMA reads into one doorbell batch
        // (RDMAbox-style request merging): the NIC charges a single post
        // for the list instead of one per backend. Socket polls and
        // breaker-fallback polls still go out inline.
        let mut batch = std::mem::take(&mut self.batch_scratch);
        batch.clear();
        for idx in 0..self.backends.len() {
            if self.inflight[idx].count() >= self.max_outstanding {
                self.views[idx].skipped += 1;
                continue;
            }
            self.views[idx].polls += 1;
            self.issue_poll_to(idx, 0, os, Some(&mut batch));
        }
        match batch.len() {
            0 => {}
            // A lone read gains nothing from the batch path; keep the
            // single-post shape (and its stats) identical to before.
            1 => {
                let (node, region, token) = batch[0];
                os.rdma_read(node, region, token);
            }
            _ => os.rdma_read_batch(&batch),
        }
        batch.clear();
        self.batch_scratch = batch;
    }

    /// Send one poll request to backend `idx`; `attempt > 0` marks a retry
    /// promised by a [`TimeoutAction::Retry`].
    ///
    /// One-sided schemes consult the per-backend breaker: while it is
    /// open, polls divert to the fallback socket path (Socket-Async
    /// semantics over the same connection); once the cool-down elapses
    /// the next poll doubles as the half-open probe over the primary
    /// RDMA path. Only primary-path completions can close the breaker.
    fn issue_poll(&mut self, idx: usize, attempt: u32, os: &mut OsApi<'_, '_>) {
        self.issue_poll_to(idx, attempt, os, None);
    }

    /// [`issue_poll`](Self::issue_poll), optionally deferring an RDMA
    /// read into `batch` for a coalesced doorbell post by the caller.
    fn issue_poll_to(
        &mut self,
        idx: usize,
        attempt: u32,
        os: &mut OsApi<'_, '_>,
        batch: Option<&mut Vec<(NodeId, RegionId, u64)>>,
    ) {
        let now = os.now();
        let b = self.backends[idx];
        let use_rdma = if self.scheme.is_one_sided() {
            match &mut self.channels[idx].breaker {
                Some(br) => {
                    let (primary, probe) = br.allow_primary(now);
                    if primary {
                        if probe {
                            self.channels[idx].health.probes += 1;
                        }
                        true
                    } else if b.conn.is_some() {
                        self.channels[idx].health.fallback_polls += 1;
                        false
                    } else {
                        // Nothing to fall back to: keep hitting the
                        // primary path rather than going silent.
                        true
                    }
                }
                None => true,
            }
        } else {
            false
        };
        let req = if use_rdma {
            let region = b.region.expect("RDMA scheme needs a region");
            let seq = self.inflight[idx].next_seq;
            self.inflight[idx].next_seq = seq.wrapping_add(1);
            let token = MON_TOKEN_BASE | ((idx as u64) << 32) | seq as u64;
            match batch {
                Some(buf) => buf.push((b.node, region, token)),
                None => os.rdma_read(b.node, region, token),
            }
            token
        } else {
            let conn = b.conn.expect("socket path needs a connection");
            self.next_req += 1;
            let req = self.next_req;
            os.send_direct(
                conn,
                Payload::MonitorRequest {
                    scheme: self.scheme,
                    want_detail: self.want_detail,
                    req,
                },
            );
            req
        };
        if attempt == 0 {
            self.inflight[idx].tracker.begin(req, now);
        } else {
            self.inflight[idx].tracker.begin_retry(req, attempt, now);
        }
        self.inflight[idx].note_sent(req, now);
        self.sync_view(idx);
    }

    /// Expire overdue polls and issue any retries whose backoff has
    /// elapsed. Embedding services call this from their poll timer, so
    /// timeout resolution is the poll interval. No-op with
    /// [`RetryPolicy::OFF`].
    pub fn check_timeouts(&mut self, os: &mut OsApi<'_, '_>) {
        if !self.policy.enabled() || self.scheme == Scheme::McastPush {
            return;
        }
        let now = os.now();
        let mut actions = std::mem::take(&mut self.timeout_scratch);
        for idx in 0..self.backends.len() {
            actions.clear();
            self.inflight[idx]
                .tracker
                .poll_timeouts_into(now, &mut actions);
            for &action in &actions {
                match action {
                    TimeoutAction::Retry {
                        req,
                        attempt,
                        backoff,
                    } => {
                        self.inflight[idx].take_sent(req);
                        self.pending_retries.push(PendingRetry {
                            idx,
                            attempt,
                            not_before: now + backoff,
                        });
                    }
                    TimeoutAction::GiveUp { req } => {
                        self.inflight[idx].take_sent(req);
                        // Only primary-path (RDMA-token) give-ups judge the
                        // primary channel; a fallback socket give-up says
                        // nothing about the RDMA path.
                        if req & MON_TOKEN_MASK == MON_TOKEN_BASE {
                            self.note_failure(idx, os);
                        }
                    }
                }
            }
            self.sync_view(idx);
        }
        self.timeout_scratch = actions;
        // Split out the retries whose backoff has elapsed, preserving
        // order on both sides (issue order is part of the deterministic
        // event schedule).
        let mut due = std::mem::take(&mut self.retry_scratch);
        due.clear();
        self.pending_retries.retain(|p| {
            if p.not_before <= now {
                due.push(*p);
                false
            } else {
                true
            }
        });
        for p in &due {
            self.issue_poll(p.idx, p.attempt, os);
        }
        self.retry_scratch = due;
    }

    /// Mirror the tracker's counters into the public view.
    fn sync_view(&mut self, idx: usize) {
        let t = &self.inflight[idx].tracker;
        let v = &mut self.views[idx];
        v.outstanding = t.outstanding() as u32;
        v.timed_out = t.timed_out;
        v.retries = t.retries;
        v.gave_up = t.gave_up;
        v.late_ignored = t.late_ignored;
        v.unreachable = t.is_unreachable();
    }

    /// Run one fenced admission, maintaining the stale/advance counters
    /// and the stale-admission cross-check: independently of the gate's
    /// verdict, re-derive "is this record's generation behind the gate's
    /// high-water mark?" at the moment of admission and count violations
    /// in `fence_regressions`. In a correct build the counter is zero by
    /// construction (any verdict other than `StaleGeneration` implies
    /// the generation is at or above the high-water mark), which is
    /// exactly what makes it a chaos-search invariant: a mutation that
    /// bypasses the verdict cannot bypass the cross-check.
    fn admit_fenced(&mut self, idx: usize, fence: RecordFence) -> FenceVerdict {
        let high_water = self.channels[idx].fence.latest().map(|l| l.generation);
        // lint: allow-attr — `mut` is only exercised by the chaos-canary feature below
        #[allow(unused_mut)]
        let mut verdict = self.channels[idx].fence.admit(fence);
        #[cfg(feature = "chaos-canary")]
        if verdict == FenceVerdict::StaleGeneration && !self.canary_spent {
            // The seeded bug: wave one stale record through the gate.
            self.canary_spent = true;
            verdict = FenceVerdict::Admitted;
        }
        match verdict {
            FenceVerdict::StaleGeneration => {
                self.channels[idx].health.stale_gen_rejected += 1;
            }
            v => {
                if v == FenceVerdict::GenerationAdvanced {
                    self.channels[idx].health.generation_advances += 1;
                }
                if high_water.is_some_and(|g| fence.generation < g) {
                    self.channels[idx].health.fence_regressions += 1;
                }
            }
        }
        verdict
    }

    fn accept(
        &mut self,
        idx: usize,
        snap: LoadSnapshot,
        sent: Option<SimTime>,
        os: &mut OsApi<'_, '_>,
    ) {
        let now = os.now();
        let label = self.scheme.label();
        let r = os.recorder();
        if let Some(sent) = sent {
            let lat = *self
                .lat_id
                .get_or_insert_with(|| r.histogram_id(&format!("mon/latency/{label}")));
            r.histogram_at(lat).record(now.since(sent).nanos());
        }
        let stale = *self
            .stale_id
            .get_or_insert_with(|| r.histogram_id(&format!("mon/staleness/{label}")));
        r.histogram_at(stale)
            .record(now.since(snap.measured_at).nanos());
        if self.record_series {
            // Fig. 5 semantics: the reply answers "what was the load when I
            // asked" — timestamp reported values at request time.
            let at = sent.unwrap_or(now);
            let node = self.backends[idx].node;
            let ids = *self.series_ids[idx].get_or_insert_with(|| MonSeriesIds {
                nthreads: r.series_id(&format!("mon/{label}/{node}/nthreads")),
                cpu_util: r.series_id(&format!("mon/{label}/{node}/cpu_util")),
                run_queue: r.series_id(&format!("mon/{label}/{node}/run_queue")),
                pending_irqs: r.series_id(&format!("mon/{label}/{node}/pending_irqs")),
                pending_cpu: [0, 1]
                    .map(|cpu| r.series_id(&format!("mon/{label}/{node}/pending_irqs_cpu{cpu}"))),
                irq_total_cpu: [0, 1]
                    .map(|cpu| r.series_id(&format!("mon/{label}/{node}/irq_total_cpu{cpu}"))),
            });
            r.series_at(ids.nthreads).push(at, snap.nthreads as f64);
            r.series_at(ids.cpu_util).push(at, snap.cpu_util);
            r.series_at(ids.run_queue).push(at, snap.run_queue as f64);
            r.series_at(ids.pending_irqs)
                .push(at, snap.pending_irqs_total() as f64);
            for (cpu, &p) in snap.pending_irqs.iter().enumerate().take(2) {
                r.series_at(ids.pending_cpu[cpu]).push(at, p as f64);
            }
            for (cpu, &t) in snap.irq_total.iter().enumerate().take(2) {
                r.series_at(ids.irq_total_cpu[cpu]).push(at, t as f64);
            }
        }
        self.views[idx].latest = Some(snap);
        self.views[idx].received_at = Some(now);
        self.views[idx].replies += 1;
        self.views[idx].outstanding = self.inflight[idx].count() as u32;
    }

    /// Feed a packet; returns true when consumed.
    pub fn on_packet(&mut self, conn: ConnId, payload: &Payload, os: &mut OsApi<'_, '_>) -> bool {
        match payload {
            Payload::MonitorReply { snap, req, fence } => {
                let Some(&idx) = self.conn_to_idx.get(&conn) else {
                    return false;
                };
                let sent = self.inflight[idx].take_sent(*req);
                let outcome = self.inflight[idx].tracker.on_reply(*req);
                // The canary bug's production half: late and duplicate
                // replies are no longer ignored, so a pre-restart
                // straggler (reordered or echoed past the backend's
                // crash window) reaches the fence — whose own canary
                // half in `admit_fenced` waves the first stale
                // generation through.
                #[cfg(feature = "chaos-canary")]
                let outcome =
                    if matches!(outcome, ReplyOutcome::LateIgnored | ReplyOutcome::Unknown) {
                        ReplyOutcome::Accepted
                    } else {
                        outcome
                    };
                match outcome {
                    ReplyOutcome::Accepted => {
                        if !snap.checksum_ok() {
                            // Bit-corrupted in flight: the seal no longer
                            // matches the content. Never admitted — and the
                            // fence never sees it, so a corrupt fence field
                            // can't poison the gate either.
                            self.channels[idx].health.corrupt_rejected += 1;
                        } else if self.admit_fenced(idx, *fence) != FenceVerdict::StaleGeneration {
                            self.accept(idx, *snap, sent, os);
                        }
                        // A pre-restart straggler is provably stale, never
                        // admitted into the view (counted by admit_fenced).
                    }
                    // Late or unknown replies are counted by the tracker and
                    // dropped — never double-counted into the view.
                    ReplyOutcome::LateIgnored | ReplyOutcome::Unknown => {}
                }
                self.sync_view(idx);
                true
            }
            Payload::RegionAdvertise {
                region, generation, ..
            } => {
                let Some(&idx) = self.conn_to_idx.get(&conn) else {
                    return false;
                };
                // Re-registration handshake: re-pin the handle to the
                // freshly registered region and fence out the old
                // generation.
                self.backends[idx].region = Some(*region);
                let ch = &mut self.channels[idx];
                ch.health.repins += 1;
                let verdict = ch.fence.admit(RecordFence {
                    generation: *generation,
                    seq: 0,
                });
                if verdict == FenceVerdict::GenerationAdvanced {
                    ch.health.generation_advances += 1;
                }
                // The backend itself says the channel is back: probe the
                // primary path immediately instead of waiting out the
                // cool-down.
                if let Some(br) = &mut ch.breaker {
                    br.nudge_probe();
                }
                true
            }
            _ => false,
        }
    }

    /// Feed an RDMA completion; returns true when consumed.
    pub fn on_rdma_complete(
        &mut self,
        token: u64,
        result: &RdmaResult,
        os: &mut OsApi<'_, '_>,
    ) -> bool {
        if token & MON_TOKEN_MASK != MON_TOKEN_BASE {
            return false;
        }
        let idx = ((token >> 32) & 0xFF) as usize;
        if idx >= self.backends.len() {
            return false;
        }
        let sent = self.inflight[idx].take_sent(token);
        match self.inflight[idx].tracker.on_reply(token) {
            ReplyOutcome::Accepted => match result {
                RdmaResult::ReadOk { data, fence } => {
                    if matches!(data, RegionData::Snapshot(s) if !s.checksum_ok()) {
                        // Bit-corrupted on the data leg: reject the record
                        // and judge the channel — a NIC serving garbage is
                        // a sick channel, not a healthy one.
                        self.channels[idx].health.corrupt_rejected += 1;
                        self.note_failure(idx, os);
                    } else if self.admit_fenced(idx, *fence) == FenceVerdict::StaleGeneration {
                        // A read served from a pre-restart registration
                        // that raced the generation bump: reject it and
                        // judge the channel.
                        self.note_failure(idx, os);
                    } else {
                        if let RegionData::Snapshot(snap) = data {
                            self.accept(idx, *snap, sent, os);
                        }
                        self.note_success(idx, os);
                    }
                }
                RdmaResult::AccessDenied => {
                    self.views[idx].denied += 1;
                    self.note_failure(idx, os);
                }
                RdmaResult::RegionInvalidated => {
                    // The backend restarted: its old registration is dead.
                    self.channels[idx].health.region_invalidated += 1;
                    self.note_failure(idx, os);
                    // Backstop handshake: ask where the region lives now.
                    // (The backend's own restart advertisement usually wins
                    // the race; the query covers advertisements lost to
                    // faults, answered when a standby reporter runs.)
                    if let Some(conn) = self.backends[idx].conn {
                        self.next_req += 1;
                        let req = self.next_req;
                        os.send_direct(conn, Payload::RegionQuery { req });
                    }
                }
                RdmaResult::WriteOk => {}
                // The monitoring client never posts atomics; a CAS
                // completion here means a token collision with some
                // lock-service tenant — count it against the channel
                // rather than silently accepting foreign data.
                RdmaResult::CasOk { .. } => {
                    self.views[idx].denied += 1;
                    self.note_failure(idx, os);
                }
            },
            // A completion for a request we already timed out: ignore the
            // data so it can't be counted twice.
            ReplyOutcome::LateIgnored | ReplyOutcome::Unknown => {}
        }
        self.sync_view(idx);
        true
    }

    /// Feed a multicast status push; returns true when consumed.
    pub fn on_mcast(&mut self, payload: &Payload, os: &mut OsApi<'_, '_>) -> bool {
        let Payload::StatusPush { origin, snap } = payload else {
            return false;
        };
        let Some(&idx) = self.node_to_idx.get(origin) else {
            return false;
        };
        // Multicast bodies are Arc-shared and never mutated in flight,
        // but the check is one compare and keeps the admission rule
        // uniform: no record with a broken seal enters a view.
        if !snap.checksum_ok() {
            self.channels[idx].health.corrupt_rejected += 1;
            return true;
        }
        self.accept(idx, *snap, None, os);
        true
    }
}
