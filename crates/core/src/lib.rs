//! # fgmon-core — RDMA-based fine-grained resource monitoring
//!
//! The primary contribution of the reproduced paper: five front-end-pull
//! resource-monitoring schemes for cluster-based servers —
//! `Socket-Async`, `Socket-Sync`, `RDMA-Async`, `RDMA-Sync` and
//! `e-RDMA-Sync` — plus a multicast-push extension.
//!
//! * [`backend`] — the back-end exporters (Figs. 1–2 of the paper).
//! * [`client`] — the front-end [`client::MonitorClient`] component.
//! * [`frontend`] — a standalone polling service for micro-benchmarks.
//! * [`accuracy`] — reported-vs-ground-truth analysis (Figs. 5–6).
//!
//! The headline property, realized structurally in the simulation exactly
//! as on hardware: the RDMA-Sync family involves **no back-end thread and
//! no back-end CPU**, so its monitoring latency is independent of back-end
//! load and its values are always current.

pub mod accuracy;
pub mod backend;
pub mod client;
pub mod frontend;

pub use accuracy::{mean_deviation, mean_reported, scheme_quality, AccuracyMetric, SchemeQuality};
pub use backend::{
    make_backend, BackendConfig, McastPushBackend, RdmaAsyncBackend, RdmaSyncBackend, SocketBackend,
};
pub use client::{BackendHandle, BackendView, MonitorClient, MON_TOKEN_BASE};
pub use frontend::MonitorFrontendService;
