//! Back-end side of the five monitoring schemes (paper §3, Figs. 1–2).
//!
//! | Scheme        | Threads on the back-end | Export mechanism |
//! |---------------|-------------------------|------------------|
//! | Socket-Async  | calc thread + reporter thread | socket reply from shared buffer |
//! | Socket-Sync   | reporter thread (computes per request) | socket reply |
//! | RDMA-Async    | calc thread             | registered user buffer |
//! | RDMA-Sync     | **none**                | registered kernel memory |
//! | e-RDMA-Sync   | **none**                | registered kernel memory + `irq_stat` |
//! | Mcast-Push    | calc thread             | hardware multicast status frames |

use fgmon_os::{OsApi, Service};
use fgmon_sim::{SimDuration, SimTime};
use fgmon_types::{
    ConnId, LoadSnapshot, McastGroup, MonitorConfig, NodeId, Payload, RdmaResult, RegionId, Scheme,
    ThreadId,
};

/// Tokens used by backend threads.
const TOK_CALC_DONE: u64 = 0xBAC0_0001;
const TOK_CALC_WAKE: u64 = 0xBAC0_0002;
const TOK_SYNC_DONE: u64 = 0xBAC0_0003;
const TOK_PUSH_DONE: u64 = 0xBAC0_0004;
const TOK_PUSH_WAKE: u64 = 0xBAC0_0005;

/// Configuration shared by the backend services.
#[derive(Clone, Copy, Debug)]
pub struct BackendConfig {
    /// Calc-thread refresh interval `T` (async schemes).
    pub calc_interval: SimDuration,
    /// Expose `irq_stat` to the user-space schemes through the helper
    /// kernel module (the paper's Fig. 6 experiment setup).
    pub via_kernel_module: bool,
    /// Multicast group for the multicast-push extension.
    pub mcast_group: McastGroup,
    /// Target of the RDMA-write-push extension: the front-end node and
    /// the buffer registered there for this back-end.
    pub push_target: Option<(NodeId, RegionId)>,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            calc_interval: SimDuration::from_millis(50),
            via_kernel_module: false,
            mcast_group: McastGroup(0),
            push_target: None,
        }
    }
}

impl BackendConfig {
    pub fn from_monitor(cfg: &MonitorConfig) -> Self {
        BackendConfig {
            calc_interval: cfg.calc_interval,
            via_kernel_module: cfg.want_detail,
            ..BackendConfig::default()
        }
    }
}

/// Build the backend service for `scheme`. Returns `None` for the
/// RDMA-Sync family *only if* kernel registration is handled elsewhere —
/// it never is, so this always returns a service; the RDMA-Sync service
/// merely registers memory at boot and then does nothing, which is the
/// paper's whole point.
pub fn make_backend(scheme: Scheme, cfg: BackendConfig) -> Box<dyn Service> {
    match scheme {
        Scheme::SocketAsync => Box::new(SocketBackend::new(cfg, false)),
        Scheme::SocketSync => Box::new(SocketBackend::new(cfg, true)),
        Scheme::RdmaAsync => Box::new(RdmaAsyncBackend::new(cfg)),
        Scheme::RdmaSync => Box::new(RdmaSyncBackend::new(cfg.via_kernel_module)),
        Scheme::ERdmaSync => Box::new(RdmaSyncBackend::new(true)),
        Scheme::McastPush => Box::new(McastPushBackend::new(cfg)),
        Scheme::RdmaWritePush => Box::new(RdmaWritePushBackend::new(cfg)),
    }
}

// ---------------------------------------------------------------------------

/// Sockets-based back-end (paper Fig. 1).
///
/// Asynchronous mode runs the *load-calculating thread* (Steps 1–4: read
/// `/proc`, compute, copy to the known memory location, sleep `T`) plus the
/// *load-reporting thread* (Steps a–c). Synchronous mode runs only the
/// reporting thread, which reads `/proc` for every request (Steps 1–5 of
/// Fig. 1b).
pub struct SocketBackend {
    cfg: BackendConfig,
    sync: bool,
    calc_tid: Option<ThreadId>,
    report_tid: Option<ThreadId>,
    /// The "known memory location" the async calc thread refreshes.
    shared: Option<LoadSnapshot>,
    /// Requests whose `/proc` scan is in flight (sync mode): the reply
    /// connection plus the correlation id to echo.
    pending: std::collections::VecDeque<(ConnId, u64)>,
    /// Connections to listen on (set before boot by the cluster builder).
    pub conns: Vec<ConnId>,
    /// Statistics.
    pub requests_served: u64,
    pub calc_rounds: u64,
}

impl SocketBackend {
    pub fn new(cfg: BackendConfig, sync: bool) -> Self {
        SocketBackend {
            cfg,
            sync,
            calc_tid: None,
            report_tid: None,
            shared: None,
            pending: std::collections::VecDeque::new(),
            conns: Vec::new(),
            requests_served: 0,
            calc_rounds: 0,
        }
    }

    pub fn shared_snapshot(&self) -> Option<&LoadSnapshot> {
        self.shared.as_ref()
    }

    fn start_calc_round(&mut self, tid: ThreadId, os: &mut OsApi<'_, '_>) {
        let cost = os.proc_read_cost() + os.load_calc_cost();
        os.burst(tid, cost, TOK_CALC_DONE);
    }
}

impl Service for SocketBackend {
    fn name(&self) -> &'static str {
        if self.sync {
            "socket-sync-backend"
        } else {
            "socket-async-backend"
        }
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        let report = os.spawn_thread("mon-report");
        self.report_tid = Some(report);
        for &c in &self.conns {
            os.listen_thread(c, report);
        }
        if !self.sync {
            let calc = os.spawn_thread("mon-calc");
            self.calc_tid = Some(calc);
            self.start_calc_round(calc, os);
        }
    }

    fn on_burst_done(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        match token {
            TOK_CALC_DONE => {
                // Steps 3–4 of Fig. 1a: values land in the shared location,
                // then the calc thread sleeps for interval T.
                self.shared = Some(os.proc_snapshot(self.cfg.via_kernel_module));
                self.calc_rounds += 1;
                os.sleep(tid, self.cfg.calc_interval, TOK_CALC_WAKE);
            }
            TOK_SYNC_DONE => {
                // Step 5 of Fig. 1b: reply with the freshly computed load.
                let snap = os.proc_snapshot(self.cfg.via_kernel_module);
                if let Some((conn, req)) = self.pending.pop_front() {
                    self.requests_served += 1;
                    os.send(tid, conn, Payload::MonitorReply { snap, req });
                }
            }
            _ => {}
        }
    }

    fn on_wake(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_CALC_WAKE {
            self.start_calc_round(tid, os);
        }
    }

    fn on_packet(
        &mut self,
        tid: Option<ThreadId>,
        conn: ConnId,
        _size: u32,
        payload: Payload,
        os: &mut OsApi<'_, '_>,
    ) {
        let Payload::MonitorRequest { req, .. } = payload else {
            return;
        };
        let tid = tid.expect("backend listener is threaded");
        if self.sync {
            // Fig. 1b: compute the load now, reply when done.
            self.pending.push_back((conn, req));
            let cost = os.proc_read_cost() + os.load_calc_cost();
            os.burst(tid, cost, TOK_SYNC_DONE);
        } else {
            // Fig. 1a Steps b–c: read the shared location and reply.
            self.requests_served += 1;
            let snap = self.shared.unwrap_or_else(|| LoadSnapshot {
                measured_at: SimTime::ZERO,
                ..LoadSnapshot::zero()
            });
            os.send(tid, conn, Payload::MonitorReply { snap, req });
        }
    }
}

// ---------------------------------------------------------------------------

/// RDMA-Async back-end (paper Fig. 2a): a calc thread refreshes a
/// registered user-space buffer every interval `T`; the front-end pulls it
/// with one-sided reads.
pub struct RdmaAsyncBackend {
    cfg: BackendConfig,
    calc_tid: Option<ThreadId>,
    pub region: Option<RegionId>,
    pub calc_rounds: u64,
}

impl RdmaAsyncBackend {
    pub fn new(cfg: BackendConfig) -> Self {
        RdmaAsyncBackend {
            cfg,
            calc_tid: None,
            region: None,
            calc_rounds: 0,
        }
    }
}

impl Service for RdmaAsyncBackend {
    fn name(&self) -> &'static str {
        "rdma-async-backend"
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        // Registered once; exported read-only to remote peers.
        self.region = Some(os.register_user_region(false));
        let calc = os.spawn_thread("mon-calc");
        self.calc_tid = Some(calc);
        let cost = os.proc_read_cost() + os.load_calc_cost();
        os.burst(calc, cost, TOK_CALC_DONE);
    }

    fn on_burst_done(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_CALC_DONE {
            let snap = os.proc_snapshot(self.cfg.via_kernel_module);
            if let Some(region) = self.region {
                os.write_user_region(region, snap);
            }
            self.calc_rounds += 1;
            os.sleep(tid, self.cfg.calc_interval, TOK_CALC_WAKE);
        }
    }

    fn on_wake(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_CALC_WAKE {
            let cost = os.proc_read_cost() + os.load_calc_cost();
            os.burst(tid, cost, TOK_CALC_DONE);
        }
    }
}

// ---------------------------------------------------------------------------

/// RDMA-Sync / e-RDMA-Sync back-end (paper Fig. 2b): registers the kernel
/// data structures holding resource usage and then **does nothing** — no
/// thread, no CPU, ever. `detail` additionally registers `irq_stat`
/// (e-RDMA-Sync).
pub struct RdmaSyncBackend {
    detail: bool,
    pub region: Option<RegionId>,
}

impl RdmaSyncBackend {
    pub fn new(detail: bool) -> Self {
        RdmaSyncBackend {
            detail,
            region: None,
        }
    }
}

impl Service for RdmaSyncBackend {
    fn name(&self) -> &'static str {
        if self.detail {
            "e-rdma-sync-backend"
        } else {
            "rdma-sync-backend"
        }
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        self.region = Some(os.register_kernel_region(self.detail));
    }
}

// ---------------------------------------------------------------------------

/// Multicast-push extension (paper §6): the back-end periodically computes
/// its load and pushes it to a hardware multicast group. Channel
/// semantics, so the back-end CPU is involved again — the ablation shows
/// what one-sidedness buys.
pub struct McastPushBackend {
    cfg: BackendConfig,
    tid: Option<ThreadId>,
    pub pushes: u64,
}

impl McastPushBackend {
    pub fn new(cfg: BackendConfig) -> Self {
        McastPushBackend {
            cfg,
            tid: None,
            pushes: 0,
        }
    }
}

impl Service for McastPushBackend {
    fn name(&self) -> &'static str {
        "mcast-push-backend"
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        let tid = os.spawn_thread("mon-push");
        self.tid = Some(tid);
        let cost = os.proc_read_cost() + os.load_calc_cost();
        os.burst(tid, cost, TOK_PUSH_DONE);
    }

    fn on_burst_done(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_PUSH_DONE {
            let snap = os.proc_snapshot(self.cfg.via_kernel_module);
            let origin = os.node();
            self.pushes += 1;
            os.mcast_send(
                tid,
                self.cfg.mcast_group,
                Payload::StatusPush { origin, snap },
            );
            os.sleep(tid, self.cfg.calc_interval, TOK_PUSH_WAKE);
        }
    }

    fn on_wake(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_PUSH_WAKE {
            let cost = os.proc_read_cost() + os.load_calc_cost();
            os.burst(tid, cost, TOK_PUSH_DONE);
        }
    }
}

// ---------------------------------------------------------------------------

/// RDMA-write-push extension (the authors' earlier RAIT'04 dissemination
/// design): the back-end periodically computes its load and posts a
/// one-sided RDMA **write** into a buffer registered on the front-end.
/// The back-end pays calc + post CPU; the *front-end* side is entirely
/// passive — it reads local memory.
pub struct RdmaWritePushBackend {
    cfg: BackendConfig,
    tid: Option<ThreadId>,
    pub pushes: u64,
    pub write_acks: u64,
    pub write_denied: u64,
}

impl RdmaWritePushBackend {
    pub fn new(cfg: BackendConfig) -> Self {
        RdmaWritePushBackend {
            cfg,
            tid: None,
            pushes: 0,
            write_acks: 0,
            write_denied: 0,
        }
    }
}

impl Service for RdmaWritePushBackend {
    fn name(&self) -> &'static str {
        "rdma-write-push-backend"
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        let tid = os.spawn_thread("mon-wpush");
        self.tid = Some(tid);
        let cost = os.proc_read_cost() + os.load_calc_cost();
        os.burst(tid, cost, TOK_PUSH_DONE);
    }

    fn on_burst_done(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_PUSH_DONE {
            let snap = os.proc_snapshot(self.cfg.via_kernel_module);
            if let Some((fe, region)) = self.cfg.push_target {
                self.pushes += 1;
                os.rdma_write(fe, region, snap, TOK_PUSH_DONE);
            }
            os.sleep(tid, self.cfg.calc_interval, TOK_PUSH_WAKE);
        }
    }

    fn on_wake(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_PUSH_WAKE {
            let cost = os.proc_read_cost() + os.load_calc_cost();
            os.burst(tid, cost, TOK_PUSH_DONE);
        }
    }

    fn on_rdma_complete(&mut self, _token: u64, result: RdmaResult, _os: &mut OsApi<'_, '_>) {
        match result {
            RdmaResult::WriteOk => self.write_acks += 1,
            RdmaResult::AccessDenied => self.write_denied += 1,
            _ => {}
        }
    }
}
