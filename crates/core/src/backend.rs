//! Back-end side of the five monitoring schemes (paper §3, Figs. 1–2).
//!
//! | Scheme        | Threads on the back-end | Export mechanism |
//! |---------------|-------------------------|------------------|
//! | Socket-Async  | calc thread + reporter thread | socket reply from shared buffer |
//! | Socket-Sync   | reporter thread (computes per request) | socket reply |
//! | RDMA-Async    | calc thread             | registered user buffer |
//! | RDMA-Sync     | **none**                | registered kernel memory |
//! | e-RDMA-Sync   | **none**                | registered kernel memory + `irq_stat` |
//! | Mcast-Push    | calc thread             | hardware multicast status frames |

use fgmon_os::{OsApi, Service};
use fgmon_sim::{SimDuration, SimTime};
use fgmon_types::{
    ConnId, LoadSnapshot, McastGroup, MonitorConfig, NodeId, Payload, RdmaResult, RecordFence,
    RegionId, Scheme, ThreadId,
};

/// Tokens used by backend threads.
const TOK_CALC_DONE: u64 = 0xBAC0_0001;
const TOK_CALC_WAKE: u64 = 0xBAC0_0002;
const TOK_SYNC_DONE: u64 = 0xBAC0_0003;
const TOK_PUSH_DONE: u64 = 0xBAC0_0004;
const TOK_PUSH_WAKE: u64 = 0xBAC0_0005;
const TOK_STANDBY_DONE: u64 = 0xBAC0_0006;

/// Configuration shared by the backend services.
#[derive(Clone, Copy, Debug)]
pub struct BackendConfig {
    /// Calc-thread refresh interval `T` (async schemes).
    pub calc_interval: SimDuration,
    /// Expose `irq_stat` to the user-space schemes through the helper
    /// kernel module (the paper's Fig. 6 experiment setup).
    pub via_kernel_module: bool,
    /// Multicast group for the multicast-push extension.
    pub mcast_group: McastGroup,
    /// Target of the RDMA-write-push extension: the front-end node and
    /// the buffer registered there for this back-end.
    pub push_target: Option<(NodeId, RegionId)>,
    /// Run a standby socket reporter thread on the RDMA back-ends so the
    /// front-end's circuit breaker has a fallback path to divert to when
    /// the RDMA channel trips. Off by default: the paper's RDMA-Sync
    /// property (no back-end thread at all) is preserved unless failover
    /// is explicitly wanted.
    pub fallback_reporter: bool,
}

impl Default for BackendConfig {
    fn default() -> Self {
        BackendConfig {
            calc_interval: SimDuration::from_millis(50),
            via_kernel_module: false,
            mcast_group: McastGroup(0),
            push_target: None,
            fallback_reporter: false,
        }
    }
}

impl BackendConfig {
    pub fn from_monitor(cfg: &MonitorConfig) -> Self {
        BackendConfig {
            calc_interval: cfg.calc_interval,
            via_kernel_module: cfg.want_detail,
            ..BackendConfig::default()
        }
    }
}

/// Build the backend service for `scheme`. Returns `None` for the
/// RDMA-Sync family *only if* kernel registration is handled elsewhere —
/// it never is, so this always returns a service; the RDMA-Sync service
/// merely registers memory at boot and then does nothing, which is the
/// paper's whole point.
pub fn make_backend(scheme: Scheme, cfg: BackendConfig) -> Box<dyn Service> {
    match scheme {
        Scheme::SocketAsync => Box::new(SocketBackend::new(cfg, false)),
        Scheme::SocketSync => Box::new(SocketBackend::new(cfg, true)),
        Scheme::RdmaAsync => Box::new(RdmaAsyncBackend::new(cfg)),
        Scheme::RdmaSync => {
            let detail = cfg.via_kernel_module;
            Box::new(RdmaSyncBackend::new(cfg, detail))
        }
        Scheme::ERdmaSync => Box::new(RdmaSyncBackend::new(cfg, true)),
        Scheme::McastPush => Box::new(McastPushBackend::new(cfg)),
        Scheme::RdmaWritePush => Box::new(RdmaWritePushBackend::new(cfg)),
    }
}

// ---------------------------------------------------------------------------

/// Sockets-based back-end (paper Fig. 1).
///
/// Asynchronous mode runs the *load-calculating thread* (Steps 1–4: read
/// `/proc`, compute, copy to the known memory location, sleep `T`) plus the
/// *load-reporting thread* (Steps a–c). Synchronous mode runs only the
/// reporting thread, which reads `/proc` for every request (Steps 1–5 of
/// Fig. 1b).
pub struct SocketBackend {
    cfg: BackendConfig,
    sync: bool,
    calc_tid: Option<ThreadId>,
    report_tid: Option<ThreadId>,
    /// The "known memory location" the async calc thread refreshes.
    shared: Option<LoadSnapshot>,
    /// Requests whose `/proc` scan is in flight (sync mode): the reply
    /// connection plus the correlation id to echo.
    pending: std::collections::VecDeque<(ConnId, u64)>,
    /// Connections to listen on (set before boot by the cluster builder).
    pub conns: Vec<ConnId>,
    /// Statistics.
    pub requests_served: u64,
    pub calc_rounds: u64,
    /// Monotonic reply sequence stamped into fences.
    reply_seq: u64,
}

impl SocketBackend {
    pub fn new(cfg: BackendConfig, sync: bool) -> Self {
        SocketBackend {
            cfg,
            sync,
            calc_tid: None,
            report_tid: None,
            shared: None,
            pending: std::collections::VecDeque::new(),
            conns: Vec::new(),
            requests_served: 0,
            calc_rounds: 0,
            reply_seq: 0,
        }
    }

    fn fence(&mut self, os: &mut OsApi<'_, '_>) -> RecordFence {
        self.reply_seq += 1;
        RecordFence {
            generation: os.boot_generation(),
            seq: self.reply_seq,
        }
    }

    pub fn shared_snapshot(&self) -> Option<&LoadSnapshot> {
        self.shared.as_ref()
    }

    fn start_calc_round(&mut self, tid: ThreadId, os: &mut OsApi<'_, '_>) {
        let cost = os.proc_read_cost() + os.load_calc_cost();
        os.burst(tid, cost, TOK_CALC_DONE);
    }
}

impl Service for SocketBackend {
    fn name(&self) -> &'static str {
        if self.sync {
            "socket-sync-backend"
        } else {
            "socket-async-backend"
        }
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        let report = os.spawn_thread("mon-report");
        self.report_tid = Some(report);
        for &c in &self.conns {
            os.listen_thread(c, report);
        }
        if !self.sync {
            let calc = os.spawn_thread("mon-calc");
            self.calc_tid = Some(calc);
            self.start_calc_round(calc, os);
        }
    }

    fn on_burst_done(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        match token {
            TOK_CALC_DONE => {
                // Steps 3–4 of Fig. 1a: values land in the shared location,
                // then the calc thread sleeps for interval T.
                self.shared = Some(os.proc_snapshot(self.cfg.via_kernel_module));
                self.calc_rounds += 1;
                os.sleep(tid, self.cfg.calc_interval, TOK_CALC_WAKE);
            }
            TOK_SYNC_DONE => {
                // Step 5 of Fig. 1b: reply with the freshly computed load.
                let snap = os.proc_snapshot(self.cfg.via_kernel_module);
                if let Some((conn, req)) = self.pending.pop_front() {
                    self.requests_served += 1;
                    let fence = self.fence(os);
                    os.send(tid, conn, Payload::MonitorReply { snap, req, fence });
                }
            }
            _ => {}
        }
    }

    fn on_wake(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_CALC_WAKE {
            self.start_calc_round(tid, os);
        }
    }

    fn on_packet(
        &mut self,
        tid: Option<ThreadId>,
        conn: ConnId,
        _size: u32,
        payload: Payload,
        os: &mut OsApi<'_, '_>,
    ) {
        let Payload::MonitorRequest { req, .. } = payload else {
            return;
        };
        let tid = tid.expect("backend listener is threaded");
        if self.sync {
            // Fig. 1b: compute the load now, reply when done.
            self.pending.push_back((conn, req));
            let cost = os.proc_read_cost() + os.load_calc_cost();
            os.burst(tid, cost, TOK_SYNC_DONE);
        } else {
            // Fig. 1a Steps b–c: read the shared location and reply.
            self.requests_served += 1;
            let snap = self.shared.unwrap_or_else(|| LoadSnapshot {
                measured_at: SimTime::ZERO,
                ..LoadSnapshot::zero()
            });
            let fence = self.fence(os);
            os.send(tid, conn, Payload::MonitorReply { snap, req, fence });
        }
    }
}

// ---------------------------------------------------------------------------

/// RDMA-Async back-end (paper Fig. 2a): a calc thread refreshes a
/// registered user-space buffer every interval `T`; the front-end pulls it
/// with one-sided reads.
///
/// With [`BackendConfig::fallback_reporter`] a standby socket reporter
/// additionally listens on `conns`, answering `MonitorRequest` from the
/// shared buffer (Socket-Async semantics) so a tripped front-end breaker
/// has somewhere to fall back to, and answering `RegionQuery` with the
/// current registration.
pub struct RdmaAsyncBackend {
    cfg: BackendConfig,
    calc_tid: Option<ThreadId>,
    standby_tid: Option<ThreadId>,
    pub region: Option<RegionId>,
    /// Connections for the recovery handshake / standby reporter (set
    /// before boot by the cluster builder).
    pub conns: Vec<ConnId>,
    pub calc_rounds: u64,
    /// Fallback requests answered by the standby reporter.
    pub standby_served: u64,
    /// `RegionAdvertise` frames sent (restarts + query answers).
    pub readvertisements: u64,
    reply_seq: u64,
}

impl RdmaAsyncBackend {
    pub fn new(cfg: BackendConfig) -> Self {
        RdmaAsyncBackend {
            cfg,
            calc_tid: None,
            standby_tid: None,
            region: None,
            conns: Vec::new(),
            calc_rounds: 0,
            standby_served: 0,
            readvertisements: 0,
            reply_seq: 0,
        }
    }

    /// Advertise the current registration on every connection (restart
    /// recovery). Zero-cost control-plane frames: the handshake is not
    /// part of the measured monitoring path.
    fn advertise_all(&mut self, os: &mut OsApi<'_, '_>) {
        let Some(region) = self.region else { return };
        let generation = os.boot_generation();
        for i in 0..self.conns.len() {
            let conn = self.conns[i];
            self.readvertisements += 1;
            os.send_direct(
                conn,
                Payload::RegionAdvertise {
                    region,
                    generation,
                    req: 0,
                },
            );
        }
    }
}

impl Service for RdmaAsyncBackend {
    fn name(&self) -> &'static str {
        "rdma-async-backend"
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        // Registered once; exported read-only to remote peers.
        self.region = Some(os.register_user_region(false));
        let calc = os.spawn_thread("mon-calc");
        self.calc_tid = Some(calc);
        let cost = os.proc_read_cost() + os.load_calc_cost();
        os.burst(calc, cost, TOK_CALC_DONE);
        if self.cfg.fallback_reporter {
            let standby = os.spawn_thread("mon-standby");
            self.standby_tid = Some(standby);
            for &c in &self.conns {
                os.listen_thread(c, standby);
            }
        }
    }

    fn on_restart(&mut self, os: &mut OsApi<'_, '_>) {
        // The old registration died with the previous boot generation:
        // re-register (fresh generation) and tell every front-end where
        // the region now lives. The calc thread refreshes the new buffer
        // from its next round on.
        self.region = Some(os.register_user_region(false));
        self.advertise_all(os);
    }

    fn on_burst_done(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_CALC_DONE {
            let snap = os.proc_snapshot(self.cfg.via_kernel_module);
            if let Some(region) = self.region {
                os.write_user_region(region, snap);
            }
            self.calc_rounds += 1;
            os.sleep(tid, self.cfg.calc_interval, TOK_CALC_WAKE);
        }
    }

    fn on_wake(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_CALC_WAKE {
            let cost = os.proc_read_cost() + os.load_calc_cost();
            os.burst(tid, cost, TOK_CALC_DONE);
        }
    }

    fn on_packet(
        &mut self,
        tid: Option<ThreadId>,
        conn: ConnId,
        _size: u32,
        payload: Payload,
        os: &mut OsApi<'_, '_>,
    ) {
        let Some(tid) = tid else { return };
        match payload {
            Payload::MonitorRequest { req, .. } => {
                // Socket-Async semantics: answer from the shared buffer.
                let snap = self
                    .region
                    .and_then(|r| os.read_local_region(r))
                    .unwrap_or_else(|| LoadSnapshot {
                        measured_at: SimTime::ZERO,
                        ..LoadSnapshot::zero()
                    });
                self.standby_served += 1;
                self.reply_seq += 1;
                let fence = RecordFence {
                    generation: os.boot_generation(),
                    seq: self.reply_seq,
                };
                os.send(tid, conn, Payload::MonitorReply { snap, req, fence });
            }
            Payload::RegionQuery { req } => {
                if let Some(region) = self.region {
                    self.readvertisements += 1;
                    let generation = os.boot_generation();
                    os.send(
                        tid,
                        conn,
                        Payload::RegionAdvertise {
                            region,
                            generation,
                            req,
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------

/// RDMA-Sync / e-RDMA-Sync back-end (paper Fig. 2b): registers the kernel
/// data structures holding resource usage and then **does nothing** — no
/// thread, no CPU, ever. `detail` additionally registers `irq_stat`
/// (e-RDMA-Sync).
///
/// With [`BackendConfig::fallback_reporter`] the "does nothing" property
/// is deliberately relaxed: a standby reporter thread answers
/// `MonitorRequest` Socket-Sync-style (computes per request) while the
/// front-end's breaker has the RDMA path tripped, and answers
/// `RegionQuery` with the live registration.
pub struct RdmaSyncBackend {
    cfg: BackendConfig,
    detail: bool,
    pub region: Option<RegionId>,
    /// Connections for the recovery handshake / standby reporter (set
    /// before boot by the cluster builder).
    pub conns: Vec<ConnId>,
    standby_tid: Option<ThreadId>,
    /// Fallback requests whose `/proc` scan is in flight.
    pending: std::collections::VecDeque<(ConnId, u64)>,
    pub standby_served: u64,
    /// `RegionAdvertise` frames sent (restarts + query answers).
    pub readvertisements: u64,
    reply_seq: u64,
}

impl RdmaSyncBackend {
    pub fn new(cfg: BackendConfig, detail: bool) -> Self {
        RdmaSyncBackend {
            cfg,
            detail,
            region: None,
            conns: Vec::new(),
            standby_tid: None,
            pending: std::collections::VecDeque::new(),
            standby_served: 0,
            readvertisements: 0,
            reply_seq: 0,
        }
    }

    /// Advertise the current registration on every connection (restart
    /// recovery). Zero-cost control-plane frames: the handshake is not
    /// part of the measured monitoring path.
    fn advertise_all(&mut self, os: &mut OsApi<'_, '_>) {
        let Some(region) = self.region else { return };
        let generation = os.boot_generation();
        for i in 0..self.conns.len() {
            let conn = self.conns[i];
            self.readvertisements += 1;
            os.send_direct(
                conn,
                Payload::RegionAdvertise {
                    region,
                    generation,
                    req: 0,
                },
            );
        }
    }
}

impl Service for RdmaSyncBackend {
    fn name(&self) -> &'static str {
        if self.detail {
            "e-rdma-sync-backend"
        } else {
            "rdma-sync-backend"
        }
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        self.region = Some(os.register_kernel_region(self.detail));
        if self.cfg.fallback_reporter {
            let standby = os.spawn_thread("mon-standby");
            self.standby_tid = Some(standby);
            for &c in &self.conns {
                os.listen_thread(c, standby);
            }
        }
    }

    fn on_restart(&mut self, os: &mut OsApi<'_, '_>) {
        // Re-pin the kernel export under the new boot generation and tell
        // every front-end, so monitoring resumes instead of the backend
        // staying excluded forever.
        self.region = Some(os.register_kernel_region(self.detail));
        self.advertise_all(os);
    }

    fn on_burst_done(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_STANDBY_DONE {
            // Socket-Sync semantics: the load was computed for this very
            // request.
            let snap = os.proc_snapshot(self.detail || self.cfg.via_kernel_module);
            if let Some((conn, req)) = self.pending.pop_front() {
                self.standby_served += 1;
                self.reply_seq += 1;
                let fence = RecordFence {
                    generation: os.boot_generation(),
                    seq: self.reply_seq,
                };
                os.send(tid, conn, Payload::MonitorReply { snap, req, fence });
            }
        }
    }

    fn on_packet(
        &mut self,
        tid: Option<ThreadId>,
        conn: ConnId,
        _size: u32,
        payload: Payload,
        os: &mut OsApi<'_, '_>,
    ) {
        let Some(tid) = tid else { return };
        match payload {
            Payload::MonitorRequest { req, .. } => {
                self.pending.push_back((conn, req));
                let cost = os.proc_read_cost() + os.load_calc_cost();
                os.burst(tid, cost, TOK_STANDBY_DONE);
            }
            Payload::RegionQuery { req } => {
                if let Some(region) = self.region {
                    self.readvertisements += 1;
                    let generation = os.boot_generation();
                    os.send(
                        tid,
                        conn,
                        Payload::RegionAdvertise {
                            region,
                            generation,
                            req,
                        },
                    );
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------

/// Multicast-push extension (paper §6): the back-end periodically computes
/// its load and pushes it to a hardware multicast group. Channel
/// semantics, so the back-end CPU is involved again — the ablation shows
/// what one-sidedness buys.
pub struct McastPushBackend {
    cfg: BackendConfig,
    tid: Option<ThreadId>,
    pub pushes: u64,
}

impl McastPushBackend {
    pub fn new(cfg: BackendConfig) -> Self {
        McastPushBackend {
            cfg,
            tid: None,
            pushes: 0,
        }
    }
}

impl Service for McastPushBackend {
    fn name(&self) -> &'static str {
        "mcast-push-backend"
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        let tid = os.spawn_thread("mon-push");
        self.tid = Some(tid);
        let cost = os.proc_read_cost() + os.load_calc_cost();
        os.burst(tid, cost, TOK_PUSH_DONE);
    }

    fn on_burst_done(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_PUSH_DONE {
            let snap = os.proc_snapshot(self.cfg.via_kernel_module);
            let origin = os.node();
            self.pushes += 1;
            os.mcast_send(
                tid,
                self.cfg.mcast_group,
                Payload::StatusPush { origin, snap },
            );
            os.sleep(tid, self.cfg.calc_interval, TOK_PUSH_WAKE);
        }
    }

    fn on_wake(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_PUSH_WAKE {
            let cost = os.proc_read_cost() + os.load_calc_cost();
            os.burst(tid, cost, TOK_PUSH_DONE);
        }
    }
}

// ---------------------------------------------------------------------------

/// RDMA-write-push extension (the authors' earlier RAIT'04 dissemination
/// design): the back-end periodically computes its load and posts a
/// one-sided RDMA **write** into a buffer registered on the front-end.
/// The back-end pays calc + post CPU; the *front-end* side is entirely
/// passive — it reads local memory.
pub struct RdmaWritePushBackend {
    cfg: BackendConfig,
    tid: Option<ThreadId>,
    pub pushes: u64,
    pub write_acks: u64,
    pub write_denied: u64,
}

impl RdmaWritePushBackend {
    pub fn new(cfg: BackendConfig) -> Self {
        RdmaWritePushBackend {
            cfg,
            tid: None,
            pushes: 0,
            write_acks: 0,
            write_denied: 0,
        }
    }
}

impl Service for RdmaWritePushBackend {
    fn name(&self) -> &'static str {
        "rdma-write-push-backend"
    }

    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        let tid = os.spawn_thread("mon-wpush");
        self.tid = Some(tid);
        let cost = os.proc_read_cost() + os.load_calc_cost();
        os.burst(tid, cost, TOK_PUSH_DONE);
    }

    fn on_burst_done(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_PUSH_DONE {
            let snap = os.proc_snapshot(self.cfg.via_kernel_module);
            if let Some((fe, region)) = self.cfg.push_target {
                self.pushes += 1;
                os.rdma_write(fe, region, snap, TOK_PUSH_DONE);
            }
            os.sleep(tid, self.cfg.calc_interval, TOK_PUSH_WAKE);
        }
    }

    fn on_wake(&mut self, tid: ThreadId, token: u64, os: &mut OsApi<'_, '_>) {
        if token == TOK_PUSH_WAKE {
            let cost = os.proc_read_cost() + os.load_calc_cost();
            os.burst(tid, cost, TOK_PUSH_DONE);
        }
    }

    fn on_rdma_complete(&mut self, _token: u64, result: RdmaResult, _os: &mut OsApi<'_, '_>) {
        match result {
            RdmaResult::WriteOk => self.write_acks += 1,
            RdmaResult::AccessDenied => self.write_denied += 1,
            _ => {}
        }
    }
}
