//! Accuracy analysis: compare what a scheme *reported* against the
//! ground-truth kernel series (the paper's Figure 5 methodology: a
//! zero-cost kernel-module probe records the actual values at fine
//! granularity; each scheme's reports are compared against it).

use fgmon_sim::Recorder;
use fgmon_types::{NodeId, Scheme};

/// Metrics whose accuracy the experiments analyze.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccuracyMetric {
    /// Number of threads running on the server (Fig. 5a).
    NThreads,
    /// Load on the CPU (Fig. 5b).
    CpuUtil,
    /// Instantaneous run-queue depth.
    RunQueue,
    /// Pending interrupts (Fig. 6).
    PendingIrqs,
}

impl AccuracyMetric {
    pub fn key(self) -> &'static str {
        match self {
            AccuracyMetric::NThreads => "nthreads",
            AccuracyMetric::CpuUtil => "cpu_util",
            AccuracyMetric::RunQueue => "run_queue",
            AccuracyMetric::PendingIrqs => "pending_irqs",
        }
    }
}

/// Mean absolute deviation of `scheme`'s reported series for `metric` on
/// `node`, against the ground-truth probe. Returns `None` when either
/// series is missing (e.g. series recording disabled).
pub fn mean_deviation(
    recorder: &Recorder,
    scheme: Scheme,
    node: NodeId,
    metric: AccuracyMetric,
) -> Option<f64> {
    let reported =
        recorder.get_series(&format!("mon/{}/{node}/{}", scheme.label(), metric.key()))?;
    let truth = recorder.get_series(&format!("gt/{node}/{}", metric.key()))?;
    if reported.is_empty() || truth.is_empty() {
        return None;
    }
    Some(reported.mean_abs_deviation_from(truth))
}

/// Mean of a scheme's reported series (used for the Fig. 6 comparison,
/// where what matters is *how many* interrupts each scheme sees at all).
pub fn mean_reported(
    recorder: &Recorder,
    scheme: Scheme,
    node: NodeId,
    metric: AccuracyMetric,
) -> Option<f64> {
    let reported =
        recorder.get_series(&format!("mon/{}/{node}/{}", scheme.label(), metric.key()))?;
    if reported.is_empty() {
        return None;
    }
    Some(reported.mean())
}

/// Summary of one scheme's monitoring quality over a run.
#[derive(Clone, Copy, Debug)]
pub struct SchemeQuality {
    pub scheme: Scheme,
    pub latency_mean_us: f64,
    pub latency_max_us: f64,
    pub staleness_mean_ms: f64,
    pub staleness_max_ms: f64,
}

/// Extract latency/staleness for a scheme from the recorder.
pub fn scheme_quality(recorder: &Recorder, scheme: Scheme) -> Option<SchemeQuality> {
    let lat = recorder.get_histogram(&format!("mon/latency/{}", scheme.label()))?;
    let stale = recorder.get_histogram(&format!("mon/staleness/{}", scheme.label()))?;
    Some(SchemeQuality {
        scheme,
        latency_mean_us: lat.mean() / 1e3,
        latency_max_us: lat.max() as f64 / 1e3,
        staleness_mean_ms: stale.mean() / 1e6,
        staleness_max_ms: stale.max() as f64 / 1e6,
    })
}
