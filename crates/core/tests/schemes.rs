//! End-to-end tests of the five monitoring schemes over the real fabric:
//! one front-end node polls one back-end node while background load varies.

use fgmon_core::{
    make_backend, scheme_quality, BackendConfig, BackendHandle, MonitorFrontendService,
    RdmaSyncBackend, SocketBackend,
};
use fgmon_net::Fabric;
use fgmon_os::{NodeActor, OsApi, OsCore, Service};
use fgmon_sim::{DetRng, Engine, SimDuration, SimTime};
use fgmon_types::{
    ConnId, McastGroup, Msg, NetConfig, NodeId, NodeMsg, OsConfig, RegionId, Scheme, ServiceSlot,
    ThreadId,
};

/// CPU hogs for background load.
struct Hogs {
    n: u32,
}

impl Service for Hogs {
    fn name(&self) -> &'static str {
        "hogs"
    }
    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        for _ in 0..self.n {
            let tid = os.spawn_thread("hog");
            os.burst(tid, SimDuration::from_millis(40), 1);
        }
    }
    fn on_burst_done(&mut self, tid: ThreadId, _t: u64, os: &mut OsApi<'_, '_>) {
        os.burst(tid, SimDuration::from_millis(40), 1);
    }
}

struct World {
    eng: Engine<Msg>,
    fe: fgmon_sim::ActorId,
    be: fgmon_sim::ActorId,
    conn: ConnId,
}

/// One front-end + one back-end, with `hogs` background threads on the
/// back-end and the given monitoring scheme at 50 ms polling.
fn build(scheme: Scheme, hogs: u32, poll: SimDuration) -> World {
    let mut eng: Engine<Msg> = Engine::new();
    let fabric_id = eng.reserve_actor();
    let fe = eng.reserve_actor();
    let be = eng.reserve_actor();

    let mut fabric = Fabric::new(NetConfig::default(), vec![fe, be]);
    // Conn between frontend service slot 0 and backend monitor slot 0.
    let conn = fabric.add_conn(NodeId(0), ServiceSlot(0), NodeId(1), ServiceSlot(0));
    fabric.join_mcast(McastGroup(0), NodeId(0));
    eng.install(fabric_id, Box::new(fabric));

    // Back-end node: monitor backend first (region id 0 by convention),
    // then background load.
    let mut be_node = NodeActor::new(OsCore::new(
        NodeId(1),
        OsConfig::default(),
        fabric_id,
        be,
        DetRng::new(11),
    ));
    let bcfg = BackendConfig {
        calc_interval: poll,
        via_kernel_module: false,
        mcast_group: McastGroup(0),
        // Write-push backends target the front-end's first registered
        // buffer (the FE monitor registers it at boot).
        push_target: if scheme == Scheme::RdmaWritePush {
            Some((NodeId(0), RegionId(0)))
        } else {
            None
        },
        fallback_reporter: false,
    };
    let mut backend = make_backend(scheme, bcfg);
    // Socket backends need their listening connections configured.
    if let Some(sb) = (backend.as_mut() as &mut dyn std::any::Any).downcast_mut::<SocketBackend>() {
        sb.conns.push(conn);
    }
    be_node.add_service(backend);
    if hogs > 0 {
        be_node.add_service(Box::new(Hogs { n: hogs }));
    }
    eng.install(be, Box::new(be_node));

    // Front-end node.
    let mut fe_node = NodeActor::new(OsCore::new(
        NodeId(0),
        OsConfig::frontend(),
        fabric_id,
        fe,
        DetRng::new(12),
    ));
    let handle = BackendHandle {
        node: NodeId(1),
        conn: Some(conn),
        region: Some(RegionId(0)),
    };
    fe_node.add_service(Box::new(MonitorFrontendService::new(
        scheme,
        scheme.uses_irq_signal(),
        poll,
        vec![handle],
    )));
    eng.install(fe, Box::new(fe_node));

    eng.schedule(SimTime::ZERO, fe, Msg::Node(NodeMsg::Boot));
    eng.schedule(SimTime::ZERO, be, Msg::Node(NodeMsg::Boot));
    World { eng, fe, be, conn }
}

fn run_secs(w: &mut World, secs: u64) {
    w.eng
        .run_until(SimTime(SimDuration::from_secs(secs).nanos()));
}

#[test]
fn every_scheme_delivers_load_information() {
    for scheme in Scheme::ALL {
        let mut w = build(scheme, 0, SimDuration::from_millis(50));
        run_secs(&mut w, 2);
        let fe = w.eng.actor::<NodeActor>(w.fe).unwrap();
        let svc = fe
            .service::<MonitorFrontendService>(ServiceSlot(0))
            .unwrap();
        let view = &svc.client.views()[0];
        assert!(
            view.replies >= 10,
            "{scheme}: only {} replies after 2s of 50ms polling",
            view.replies
        );
        let snap = view.latest.expect("no snapshot");
        // The back-end runs at least its own monitoring threads (for the
        // threaded schemes) — thread count must be sane.
        assert!(snap.nthreads <= 4, "{scheme}: {snap:?}");
    }
}

#[test]
fn rdma_latency_is_load_independent_sockets_degrade() {
    let lat = |scheme: Scheme, hogs: u32| -> f64 {
        let mut w = build(scheme, hogs, SimDuration::from_millis(50));
        run_secs(&mut w, 5);
        let q = scheme_quality(w.eng.recorder(), scheme).expect("no quality data");
        q.latency_mean_us
    };

    let sock_idle = lat(Scheme::SocketSync, 0);
    let sock_loaded = lat(Scheme::SocketSync, 24);
    let rdma_idle = lat(Scheme::RdmaSync, 0);
    let rdma_loaded = lat(Scheme::RdmaSync, 24);

    // Fig. 3: socket latency grows dramatically under load…
    assert!(
        sock_loaded > sock_idle * 20.0,
        "socket: idle {sock_idle}µs loaded {sock_loaded}µs"
    );
    // …while RDMA stays flat (allow small jitter).
    assert!(
        rdma_loaded < rdma_idle * 1.5 + 5.0,
        "rdma: idle {rdma_idle}µs loaded {rdma_loaded}µs"
    );
    // And RDMA is microseconds, sockets-under-load is tens of ms.
    assert!(rdma_loaded < 100.0, "rdma loaded {rdma_loaded}µs");
    assert!(sock_loaded > 10_000.0, "socket loaded {sock_loaded}µs");
}

#[test]
fn async_schemes_serve_stale_data_sync_schemes_fresh() {
    let staleness = |scheme: Scheme| -> f64 {
        let mut w = build(scheme, 4, SimDuration::from_millis(50));
        run_secs(&mut w, 5);
        scheme_quality(w.eng.recorder(), scheme)
            .unwrap()
            .staleness_mean_ms
    };
    let async_rdma = staleness(Scheme::RdmaAsync);
    let sync_rdma = staleness(Scheme::RdmaSync);
    // RDMA-Async: value age averages ~T/2..T plus calc delays; RDMA-Sync:
    // just the wire flight (microseconds).
    assert!(
        async_rdma > 10.0,
        "RDMA-Async staleness {async_rdma}ms should reflect interval T"
    );
    assert!(
        sync_rdma < 1.0,
        "RDMA-Sync staleness {sync_rdma}ms should be wire-only"
    );
}

#[test]
fn rdma_sync_backend_runs_no_threads() {
    let mut w = build(Scheme::RdmaSync, 0, SimDuration::from_millis(50));
    run_secs(&mut w, 2);
    let be = w.eng.actor::<NodeActor>(w.be).unwrap();
    assert_eq!(
        be.core().threads.live_count(),
        0,
        "RDMA-Sync must not run any back-end thread"
    );
    assert!(be
        .service::<RdmaSyncBackend>(ServiceSlot(0))
        .unwrap()
        .region
        .is_some());

    // Contrast: Socket-Async runs two (calc + reporter).
    let mut w = build(Scheme::SocketAsync, 0, SimDuration::from_millis(50));
    run_secs(&mut w, 2);
    let be = w.eng.actor::<NodeActor>(w.be).unwrap();
    assert_eq!(be.core().threads.live_count(), 2);
}

#[test]
fn rdma_sync_consumes_no_backend_cpu() {
    let mut w = build(Scheme::RdmaSync, 0, SimDuration::from_millis(10));
    run_secs(&mut w, 5);
    let be = w.eng.actor_mut::<NodeActor>(w.be).unwrap();
    let busy: u64 = be
        .core_mut()
        .cpu_acct
        .iter()
        .map(|a| a.busy_total.nanos())
        .sum();
    assert_eq!(busy, 0, "RDMA-Sync polling must not burn back-end CPU");

    // Socket-Sync at the same rate costs real CPU.
    let mut w = build(Scheme::SocketSync, 0, SimDuration::from_millis(10));
    run_secs(&mut w, 5);
    let be = w.eng.actor_mut::<NodeActor>(w.be).unwrap();
    let busy: u64 = be
        .core_mut()
        .cpu_acct
        .iter()
        .map(|a| a.busy_total.nanos())
        .sum();
    assert!(
        busy > SimDuration::from_millis(50).nanos(),
        "Socket-Sync should have burned CPU, got {busy}ns"
    );
}

#[test]
fn rdma_write_push_delivers_via_local_memory() {
    let mut w = build(Scheme::RdmaWritePush, 0, SimDuration::from_millis(50));
    run_secs(&mut w, 2);
    let fe = w.eng.actor::<NodeActor>(w.fe).unwrap();
    let svc = fe
        .service::<MonitorFrontendService>(ServiceSlot(0))
        .unwrap();
    let view = &svc.client.views()[0];
    // Poll rounds read local memory: no requests cross the wire, yet the
    // view refreshes every interval T.
    assert!(view.replies >= 10, "replies {}", view.replies);
    assert!(view.latest.is_some());
    assert!(svc.client.local_region(0).is_some());
    // The backend runs exactly one push thread and its writes are acked.
    let be = w.eng.actor::<NodeActor>(w.be).unwrap();
    assert_eq!(be.core().threads.live_count(), 1);
    let backend = be
        .service::<fgmon_core::backend::RdmaWritePushBackend>(ServiceSlot(0))
        .unwrap();
    assert!(backend.pushes >= 30, "pushes {}", backend.pushes);
    assert!(backend.write_acks >= 29, "acks {}", backend.write_acks);
    assert_eq!(backend.write_denied, 0);
}

#[test]
fn mcast_push_delivers_without_polling() {
    let mut w = build(Scheme::McastPush, 0, SimDuration::from_millis(50));
    run_secs(&mut w, 2);
    let fe = w.eng.actor::<NodeActor>(w.fe).unwrap();
    let svc = fe
        .service::<MonitorFrontendService>(ServiceSlot(0))
        .unwrap();
    let view = &svc.client.views()[0];
    assert_eq!(view.polls, 0, "push scheme must not poll");
    assert!(view.replies >= 10, "got {} pushes", view.replies);
}

#[test]
fn e_rdma_sync_sees_pending_interrupt_detail() {
    // Configure communication load towards the back-end so interrupts are
    // in flight, then check the e-RDMA-Sync snapshot carries irq counts.
    struct Chatter {
        conn: ConnId,
    }
    impl Service for Chatter {
        fn name(&self) -> &'static str {
            "chatter"
        }
        fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
            os.set_timer(SimDuration::from_micros(200), 1);
        }
        fn on_timer(&mut self, _t: u64, os: &mut OsApi<'_, '_>) {
            os.send_direct(self.conn, fgmon_types::Payload::Opaque { tag: 7 });
            os.set_timer(SimDuration::from_micros(200), 1);
        }
    }

    let mut eng: Engine<Msg> = Engine::new();
    let fabric_id = eng.reserve_actor();
    let fe = eng.reserve_actor();
    let be = eng.reserve_actor();
    let mut fabric = Fabric::new(NetConfig::default(), vec![fe, be]);
    let mon_conn = fabric.add_conn(NodeId(0), ServiceSlot(0), NodeId(1), ServiceSlot(0));
    // Chatter floods a second conn whose backend listener is a hog thread
    // that never drains fast (no listener: dropped after irq processing —
    // still raises interrupts, which is all we need).
    let chat_conn = fabric.add_conn(NodeId(0), ServiceSlot(1), NodeId(1), ServiceSlot(7));
    eng.install(fabric_id, Box::new(fabric));

    let mut be_node = NodeActor::new(OsCore::new(
        NodeId(1),
        OsConfig::default(),
        fabric_id,
        be,
        DetRng::new(3),
    ));
    be_node.add_service(make_backend(
        Scheme::ERdmaSync,
        BackendConfig {
            calc_interval: SimDuration::from_millis(50),
            via_kernel_module: false,
            mcast_group: McastGroup(0),
            push_target: None,
            fallback_reporter: false,
        },
    ));
    be_node.add_service(Box::new(Hogs { n: 4 }));
    eng.install(be, Box::new(be_node));

    let mut fe_node = NodeActor::new(OsCore::new(
        NodeId(0),
        OsConfig::frontend(),
        fabric_id,
        fe,
        DetRng::new(4),
    ));
    fe_node.add_service(Box::new(MonitorFrontendService::new(
        Scheme::ERdmaSync,
        true,
        SimDuration::from_millis(5),
        vec![BackendHandle {
            node: NodeId(1),
            conn: Some(mon_conn),
            region: Some(RegionId(0)),
        }],
    )));
    fe_node.add_service(Box::new(Chatter { conn: chat_conn }));
    eng.install(fe, Box::new(fe_node));

    eng.schedule(SimTime::ZERO, fe, Msg::Node(NodeMsg::Boot));
    eng.schedule(SimTime::ZERO, be, Msg::Node(NodeMsg::Boot));
    eng.run_until(SimTime(SimDuration::from_secs(3).nanos()));

    let fe_actor = eng.actor::<NodeActor>(fe).unwrap();
    let svc = fe_actor
        .service::<MonitorFrontendService>(ServiceSlot(0))
        .unwrap();
    let snap = svc.client.views()[0].latest.expect("no snapshot");
    // Cumulative interrupt totals must be visible and substantial.
    let total: u64 = snap.irq_total.iter().sum();
    assert!(total > 1_000, "irq totals {total}");
}

#[test]
fn determinism_across_identical_runs() {
    let run = || {
        let mut w = build(Scheme::SocketAsync, 8, SimDuration::from_millis(20));
        run_secs(&mut w, 3);
        let q = scheme_quality(w.eng.recorder(), Scheme::SocketAsync).unwrap();
        (
            q.latency_mean_us.to_bits(),
            q.staleness_mean_ms.to_bits(),
            w.eng.events_processed(),
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn poll_overlap_is_counted_not_queued() {
    // 1ms polling against a back-end loaded enough that socket replies take
    // longer than 1ms: the client must skip, not pile up.
    let mut w = build(Scheme::SocketSync, 24, SimDuration::from_millis(1));
    run_secs(&mut w, 3);
    let fe = w.eng.actor::<NodeActor>(w.fe).unwrap();
    let svc = fe
        .service::<MonitorFrontendService>(ServiceSlot(0))
        .unwrap();
    let view = &svc.client.views()[0];
    assert!(view.skipped > 0, "expected skips under overload");
    assert!(view.polls + view.skipped >= 2_900, "rounds happened");
    let _ = w.conn;
}
