//! Focused tests of the `MonitorClient` front-end component: pipelining
//! budget, denial handling, and view bookkeeping.

use fgmon_core::{BackendHandle, MonitorFrontendService};
use fgmon_net::Fabric;
use fgmon_os::{NodeActor, OsApi, OsCore, Service};
use fgmon_sim::{DetRng, Engine, SimDuration, SimTime};
use fgmon_types::{
    Msg, NetConfig, NodeId, NodeMsg, OsConfig, RegionId, Scheme, ServiceSlot, ThreadId,
};

/// Back-end that registers nothing (all reads denied) or occupies the CPU
/// fully so socket replies stall.
struct StubBackend {
    register: bool,
    hogs: u32,
}

impl Service for StubBackend {
    fn name(&self) -> &'static str {
        "stub"
    }
    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        if self.register {
            os.register_kernel_region(false);
        }
        for _ in 0..self.hogs {
            let tid = os.spawn_thread("hog");
            os.burst(tid, SimDuration::from_secs(60), 1);
        }
    }
    fn on_burst_done(&mut self, tid: ThreadId, _t: u64, os: &mut OsApi<'_, '_>) {
        os.burst(tid, SimDuration::from_secs(60), 1);
    }
}

fn mini_world(
    scheme: Scheme,
    register: bool,
    hogs: u32,
    poll: SimDuration,
) -> (Engine<Msg>, fgmon_sim::ActorId) {
    let mut eng: Engine<Msg> = Engine::new();
    let fabric_id = eng.reserve_actor();
    let fe = eng.reserve_actor();
    let be = eng.reserve_actor();
    let mut fabric = Fabric::new(NetConfig::default(), vec![fe, be]);
    let conn = fabric.add_conn(NodeId(0), ServiceSlot(0), NodeId(1), ServiceSlot(0));
    eng.install(fabric_id, Box::new(fabric));

    let mut be_node = NodeActor::new(OsCore::new(
        NodeId(1),
        OsConfig::default(),
        fabric_id,
        be,
        DetRng::new(1),
    ));
    be_node.add_service(Box::new(StubBackend { register, hogs }));
    eng.install(be, Box::new(be_node));

    let mut fe_node = NodeActor::new(OsCore::new(
        NodeId(0),
        OsConfig::frontend(),
        fabric_id,
        fe,
        DetRng::new(2),
    ));
    fe_node.add_service(Box::new(MonitorFrontendService::new(
        scheme,
        false,
        poll,
        vec![BackendHandle {
            node: NodeId(1),
            conn: Some(conn),
            region: Some(RegionId(0)),
        }],
    )));
    eng.install(fe, Box::new(fe_node));
    eng.schedule(SimTime::ZERO, fe, Msg::Node(NodeMsg::Boot));
    eng.schedule(SimTime::ZERO, be, Msg::Node(NodeMsg::Boot));
    (eng, fe)
}

#[test]
fn denied_reads_are_counted_not_accepted() {
    // The backend registers no region: every RDMA read is denied.
    let (mut eng, fe) = mini_world(Scheme::RdmaSync, false, 0, SimDuration::from_millis(10));
    eng.run_until(SimTime(SimDuration::from_secs(1).nanos()));
    let actor = eng.actor::<NodeActor>(fe).unwrap();
    let svc = actor
        .service::<MonitorFrontendService>(ServiceSlot(0))
        .unwrap();
    let view = &svc.client.views()[0];
    assert!(view.denied >= 90, "denied {}", view.denied);
    assert_eq!(view.replies, 0);
    assert!(view.latest.is_none());
    // Denials release the in-flight budget: polls keep flowing.
    assert!(view.polls >= 90, "polls {}", view.polls);
}

#[test]
fn pipelining_respects_the_outstanding_budget() {
    // Socket scheme against a CPU-saturated, listener-less backend: the
    // stub never answers MonitorRequests, so requests pile up until the
    // budget (16) is reached, then every round is a skip.
    let (mut eng, fe) = mini_world(Scheme::SocketSync, false, 2, SimDuration::from_millis(5));
    eng.run_until(SimTime(SimDuration::from_secs(2).nanos()));
    let actor = eng.actor::<NodeActor>(fe).unwrap();
    let svc = actor
        .service::<MonitorFrontendService>(ServiceSlot(0))
        .unwrap();
    let view = &svc.client.views()[0];
    assert_eq!(view.polls, 16, "exactly the budget gets posted");
    assert_eq!(view.outstanding, 16);
    assert!(view.skipped > 300, "skipped {}", view.skipped);
    assert_eq!(view.replies, 0);
}

#[test]
fn info_age_tracks_measurement_time() {
    let (mut eng, fe) = mini_world(Scheme::RdmaSync, true, 0, SimDuration::from_millis(50));
    eng.run_until(SimTime(SimDuration::from_secs(1).nanos()));
    let actor = eng.actor::<NodeActor>(fe).unwrap();
    let svc = actor
        .service::<MonitorFrontendService>(ServiceSlot(0))
        .unwrap();
    let view = svc.client.view_of(NodeId(1)).expect("view exists");
    let snap = view.latest.expect("snapshot");
    // RDMA-Sync measures in place: measured_at == the read instant, so
    // the age at receive time is just the NIC+wire tail of the RTT.
    let at_receive = view.received_at.unwrap();
    let age = at_receive.since(snap.measured_at);
    assert!(age < SimDuration::from_micros(50), "age {age}");
    // And ages out as time passes without polls.
    let age_later = view
        .info_age(SimTime(SimDuration::from_secs(5).nanos()))
        .unwrap();
    assert!(age_later > SimDuration::from_secs(3));
    assert_eq!(svc.client.backend_node(0), NodeId(1));
    assert_eq!(svc.client.backend_count(), 1);
}
