//! The cluster fabric: a non-blocking switch connecting every node's HCA.
//!
//! Models the two transport families of the paper's §2:
//!
//! * **Channel semantics** (sockets over IPoIB): frames pay wire +
//!   serialization latency, then hit the destination NIC and take the full
//!   interrupt + protocol + scheduling path on the remote host.
//! * **Memory semantics** (RDMA read/write): the initiator posts a work
//!   request; the *target NIC* serves it against a registered region with
//!   no target-CPU involvement; the completion travels back and is picked
//!   up by the initiator's completion-queue poll.
//!
//! Hardware multicast (paper §6) replicates a frame to every subscriber
//! with a small per-destination fan-out cost.

use std::collections::BTreeMap;

use fgmon_sim::{Actor, ActorId, Ctx, SimDuration, SimTime};
use fgmon_types::{
    ConnId, FaultOp, FaultPlan, McastGroup, Msg, NetConfig, NetMsg, NodeId, NodeMsg, Payload,
    RdmaResult, ReadVerdict, ServiceSlot, SharedRaceDetector,
};

/// One registered point-to-point connection.
#[derive(Clone, Copy, Debug)]
pub struct ConnEntry {
    pub a: NodeId,
    pub svc_a: ServiceSlot,
    pub b: NodeId,
    pub svc_b: ServiceSlot,
}

/// Fabric statistics (observable by harnesses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    pub socket_frames: u64,
    pub socket_bytes: u64,
    pub rdma_reads: u64,
    pub rdma_writes: u64,
    pub mcast_frames: u64,
    pub dropped: u64,
    /// Frames evaluated against an active [`FaultPlan`].
    pub fault_checks: u64,
    /// Frames dropped by a loss rule.
    pub fault_dropped: u64,
    /// Frames dropped because an endpoint was fail-stopped.
    pub fault_crash_dropped: u64,
    /// Frames whose latency was inflated by congestion or a NIC stall.
    pub fault_delayed: u64,
    /// One-sided reads whose target region was written mid-flight
    /// (race checker in strict mode).
    pub torn_reads: u64,
    /// Seqlock-mode re-reads issued after a version-check mismatch.
    pub seqlock_retries: u64,
    /// Read completions answered `RegionInvalidated` (stale registration
    /// after a target restart).
    pub region_invalidated: u64,
    /// Reads that traveled inside a coalesced doorbell batch
    /// ([`NetMsg::RdmaReadBatch`]); also counted in `rdma_reads`.
    pub rdma_batched_reads: u64,
    /// Doorbell batches posted (one per `RdmaReadBatch` frame).
    pub rdma_batch_posts: u64,
}

impl FabricStats {
    /// Fold another stats block into this one (shard-replica merge).
    pub fn absorb(&mut self, o: &FabricStats) {
        self.socket_frames += o.socket_frames;
        self.socket_bytes += o.socket_bytes;
        self.rdma_reads += o.rdma_reads;
        self.rdma_writes += o.rdma_writes;
        self.mcast_frames += o.mcast_frames;
        self.dropped += o.dropped;
        self.fault_checks += o.fault_checks;
        self.fault_dropped += o.fault_dropped;
        self.fault_crash_dropped += o.fault_crash_dropped;
        self.fault_delayed += o.fault_delayed;
        self.torn_reads += o.torn_reads;
        self.seqlock_retries += o.seqlock_retries;
        self.region_invalidated += o.region_invalidated;
        self.rdma_batched_reads += o.rdma_batched_reads;
        self.rdma_batch_posts += o.rdma_batch_posts;
    }
}

/// The switch + wires actor.
pub struct Fabric {
    cfg: NetConfig,
    /// `node_actors[node.index()]` = engine id of that node's actor.
    node_actors: Vec<ActorId>,
    conns: Vec<ConnEntry>,
    mcast: BTreeMap<McastGroup, Vec<NodeId>>,
    /// Fault schedule; `fault_active` is true iff the plan has rules, so
    /// fault-free runs evaluate zero fates and stay bit-identical to
    /// builds that predate fault injection.
    plan: FaultPlan,
    fault_active: bool,
    /// Per-event fate counter: reset when an event arrives, bumped per
    /// fate evaluation. Makes every fate a pure function of
    /// `(plan seed, event time, event seq, check index)` — the same on
    /// whichever shard's replica handles the event.
    fault_check_index: u32,
    /// Shadow-state torn-read detector, shared with every node's OS core;
    /// `None` when race checking is off (zero overhead).
    race: Option<SharedRaceDetector>,
    pub stats: FabricStats,
}

/// `splitmix64` finalizer: a full-avalanche 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform fate draw in `[0, 1)` as a pure function of the plan seed and
/// the handling event's engine key. Replaces a sequential RNG stream so
/// fates do not depend on how events interleave across shards.
#[inline]
fn fate_u(seed: u64, now: SimTime, seq: u64, idx: u32) -> f64 {
    let h = mix64(seed ^ mix64(now.0 ^ mix64(seq ^ mix64(idx as u64 ^ 0x9E37_79B9_7F4A_7C15))));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Fabric {
    pub fn new(cfg: NetConfig, node_actors: Vec<ActorId>) -> Self {
        Fabric {
            cfg,
            node_actors,
            conns: Vec::new(),
            mcast: BTreeMap::new(),
            plan: FaultPlan::default(),
            fault_active: false,
            fault_check_index: 0,
            race: None,
            stats: FabricStats::default(),
        }
    }

    /// Build per-shard replicas for the parallel executor. Replicas share
    /// the immutable routing state (connection table, multicast
    /// membership, node table, fault plan, race-detector handle) and
    /// start with fresh counters; fault fates are a pure function of the
    /// plan seed and each event's engine key, so every replica decides
    /// identical fates for identical events.
    pub fn split_for_shards(&self, shards: usize) -> Vec<Fabric> {
        (0..shards)
            .map(|_| Fabric {
                cfg: self.cfg,
                node_actors: self.node_actors.clone(),
                conns: self.conns.clone(),
                mcast: self.mcast.clone(),
                plan: self.plan.clone(),
                fault_active: self.fault_active,
                fault_check_index: 0,
                race: self.race.clone(),
                stats: FabricStats::default(),
            })
            .collect()
    }

    /// Static lower bound on every fabric→node delivery latency: all
    /// delivery legs include at least one wire crossing, congestion
    /// multipliers are validated `>= 1`, and NIC stalls only add delay.
    /// The parallel executor uses this as its bounded-lag lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.cfg.wire_latency
    }

    pub fn cfg(&self) -> &NetConfig {
        &self.cfg
    }

    /// Attach the cluster-wide race detector (builder wiring).
    pub fn set_race_detector(&mut self, detector: SharedRaceDetector) {
        self.race = Some(detector);
    }

    /// Reset all frame/fault counters to zero. Harnesses that re-run
    /// scenarios on a reused fabric must call this between runs, or the
    /// second run's stats silently include the first run's traffic.
    pub fn reset_stats(&mut self) {
        self.stats = FabricStats::default();
    }

    /// Install a fault schedule. Fate draws hash the plan's own seed with
    /// each event's engine key, so identical (seed, plan) pairs replay
    /// identical fates regardless of what the rest of the simulation
    /// draws — and regardless of event interleaving across shards.
    ///
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        self.fault_active = !plan.is_empty();
        self.plan = plan;
    }

    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Decide one frame's fate under the active plan: `None` means the
    /// frame is lost, otherwise the (possibly inflated) flight latency.
    ///
    /// Completion legs (read-data, write-ack) only carry the initiator,
    /// so the unknown endpoint is passed as `None` and matches wildcard
    /// rules only. Exactly one fate draw happens per checked frame, which
    /// keeps fault fates independent of how many rules match. `seq` is
    /// the engine key of the event being handled; together with the
    /// per-event check counter it makes each draw a pure function of the
    /// event, not of the fabric's history.
    fn apply_faults(
        &mut self,
        now: SimTime,
        seq: u64,
        src: Option<NodeId>,
        dst: Option<NodeId>,
        op: FaultOp,
        base: SimDuration,
    ) -> Option<SimDuration> {
        if !self.fault_active {
            return Some(base);
        }
        self.stats.fault_checks += 1;
        let idx = self.fault_check_index;
        self.fault_check_index += 1;
        let u = fate_u(self.plan.seed, now, seq, idx);
        if src.is_some_and(|n| self.plan.crashed(n, now))
            || dst.is_some_and(|n| self.plan.crashed(n, now))
        {
            self.stats.fault_crash_dropped += 1;
            return None;
        }
        if u < self.plan.loss_probability(src, dst, op, now) {
            self.stats.fault_dropped += 1;
            return None;
        }
        let mut delay = base.mul_f64(self.plan.latency_mult(now));
        if let Some(n) = src {
            delay += self.plan.stall_extra(n, now);
        }
        if let Some(n) = dst {
            delay += self.plan.stall_extra(n, now);
        }
        if delay != base {
            self.stats.fault_delayed += 1;
        }
        Some(delay)
    }

    /// Provide (or replace) the node-id → engine-actor table. Builders
    /// call this once every node has been created.
    pub fn set_node_actors(&mut self, node_actors: Vec<ActorId>) {
        self.node_actors = node_actors;
    }

    /// Register a connection between two services; returns its id.
    /// (Connection setup happens at cluster-build time, as the paper's
    /// monitoring processes establish their connections once at startup.)
    pub fn add_conn(
        &mut self,
        a: NodeId,
        svc_a: ServiceSlot,
        b: NodeId,
        svc_b: ServiceSlot,
    ) -> ConnId {
        let id = ConnId(self.conns.len() as u64);
        self.conns.push(ConnEntry { a, svc_a, b, svc_b });
        id
    }

    pub fn conn(&self, id: ConnId) -> Option<&ConnEntry> {
        self.conns.get(id.0 as usize)
    }

    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Subscribe a node to a hardware multicast group.
    pub fn join_mcast(&mut self, group: McastGroup, node: NodeId) {
        let members = self.mcast.entry(group).or_default();
        if !members.contains(&node) {
            members.push(node);
        }
    }

    /// Wire + serialization latency for a frame of `size` bytes.
    fn frame_latency(&self, size: u32) -> SimDuration {
        self.cfg.wire_latency + SimDuration(self.cfg.per_kb.nanos() * (size as u64) / 1024)
    }

    fn actor_of(&self, node: NodeId) -> Option<ActorId> {
        self.node_actors.get(node.index()).copied()
    }

    fn deliver_socket(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        // `(now, seq)` of the send event — the fault-fate key.
        (now, seq): (SimTime, u64),
        src: NodeId,
        conn: ConnId,
        size: u32,
        payload: Payload,
    ) {
        let Some(entry) = self.conn(conn).copied() else {
            self.stats.dropped += 1;
            return;
        };
        let (dst, dst_service) = if src == entry.a {
            (entry.b, entry.svc_b)
        } else {
            (entry.a, entry.svc_a)
        };
        let Some(dst_actor) = self.actor_of(dst) else {
            self.stats.dropped += 1;
            return;
        };
        self.stats.socket_frames += 1;
        self.stats.socket_bytes += size as u64;
        let base = self.frame_latency(size);
        let Some(delay) = self.apply_faults(now, seq, Some(src), Some(dst), FaultOp::Socket, base)
        else {
            return;
        };
        ctx.send_in(
            delay,
            dst_actor,
            Msg::Node(NodeMsg::PacketArrive {
                conn,
                dst_service,
                size,
                payload,
            }),
        );
    }
}

impl Actor<Msg> for Fabric {
    fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Msg::Net(msg) = msg else {
            debug_assert!(false, "fabric received a node message");
            return;
        };
        // Fate draws are keyed by this event; restart the per-event
        // check counter (see `apply_faults`).
        self.fault_check_index = 0;
        let seq = ctx.event_seq;
        match msg {
            NetMsg::SocketSend {
                src,
                conn,
                size,
                payload,
            } => self.deliver_socket(ctx, (now, seq), src, conn, size, payload),

            NetMsg::RdmaRead {
                src,
                dst,
                region,
                req_id,
            } => {
                let Some(dst_actor) = self.actor_of(dst) else {
                    self.stats.dropped += 1;
                    return;
                };
                self.stats.rdma_reads += 1;
                // Initiator post overhead + request flight.
                let base = self.cfg.rdma_post + self.cfg.wire_latency;
                let Some(delay) =
                    self.apply_faults(now, seq, Some(src), Some(dst), FaultOp::RdmaRead, base)
                else {
                    return;
                };
                // The post's engine key rides along; the target opens the
                // shadow read window on arrival, reconstructing the epoch
                // as of this key. (Lost frames never open a window.)
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaReadArrive {
                        initiator: src,
                        region,
                        req_id,
                        posted: (now, seq),
                    }),
                );
            }

            NetMsg::RdmaReadBatch { src, reads } => {
                // One doorbell ring posts the whole batch (RDMAbox-style
                // request merging): the initiator paid `rdma_post` once,
                // and the simulator pays one fabric event instead of one
                // per read. Each read then flies and is served
                // independently, with its own fate draw.
                self.stats.rdma_batch_posts += 1;
                for r in reads {
                    let Some(dst_actor) = self.actor_of(r.dst) else {
                        self.stats.dropped += 1;
                        continue;
                    };
                    self.stats.rdma_reads += 1;
                    self.stats.rdma_batched_reads += 1;
                    let base = self.cfg.rdma_post + self.cfg.wire_latency;
                    let Some(delay) = self.apply_faults(
                        now,
                        seq,
                        Some(src),
                        Some(r.dst),
                        FaultOp::RdmaRead,
                        base,
                    ) else {
                        continue;
                    };
                    ctx.send_in(
                        delay,
                        dst_actor,
                        Msg::Node(NodeMsg::RdmaReadArrive {
                            initiator: src,
                            region: r.region,
                            req_id: r.req_id,
                            posted: (now, seq),
                        }),
                    );
                }
            }

            NetMsg::RdmaWrite {
                src,
                dst,
                region,
                req_id,
                data,
            } => {
                let Some(dst_actor) = self.actor_of(dst) else {
                    self.stats.dropped += 1;
                    return;
                };
                self.stats.rdma_writes += 1;
                let base = self.cfg.rdma_post + self.cfg.wire_latency;
                let Some(delay) =
                    self.apply_faults(now, seq, Some(src), Some(dst), FaultOp::RdmaWrite, base)
                else {
                    return;
                };
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaWriteArrive {
                        initiator: src,
                        region,
                        req_id,
                        data,
                    }),
                );
            }

            NetMsg::RdmaReadData {
                initiator,
                req_id,
                result,
                target,
                region,
                posted: _,
            } => {
                let Some(dst_actor) = self.actor_of(initiator) else {
                    self.stats.dropped += 1;
                    return;
                };
                if matches!(result, RdmaResult::RegionInvalidated) {
                    self.stats.region_invalidated += 1;
                }
                // Close the shadow read window: the data just left the
                // target NIC, so any host write since the post tore it.
                // This event was sent by the target node same-instant, so
                // it runs on the target's shard — the detector state for
                // (target, region) is only ever touched from there.
                let verdict = match &self.race {
                    Some(race) => race.borrow_mut().on_read_complete(
                        initiator,
                        req_id,
                        target,
                        region,
                        (now, seq),
                    ),
                    None => ReadVerdict::Clean,
                };
                // A version-check retry only makes sense on data that was
                // actually served: error completions (RegionInvalidated,
                // AccessDenied) carry no record to re-read, so they close
                // their re-armed window and fly back as-is.
                if !matches!(result, RdmaResult::ReadOk { .. }) {
                    if matches!(verdict, ReadVerdict::Retry { .. }) {
                        if let Some(race) = &self.race {
                            race.borrow_mut()
                                .on_read_drop(initiator, req_id, target, region);
                        }
                    }
                } else if let ReadVerdict::Retry { .. } = verdict {
                    self.stats.seqlock_retries += 1;
                    let Some(target_actor) = self.actor_of(target) else {
                        self.stats.dropped += 1;
                        return;
                    };
                    // Reader-side seqlock retry: the torn data still flies
                    // back (full return leg), the reader's version check
                    // rejects it, and a fresh read is posted — one extra
                    // round trip plus the modeled check per attempt. The
                    // re-armed window was stamped with this event's key.
                    let base = self.cfg.nic_read
                        + self.cfg.wire_latency
                        + self.cfg.completion_poll
                        + self.cfg.seqlock_check
                        + self.cfg.rdma_post
                        + self.cfg.wire_latency;
                    match self.apply_faults(
                        now,
                        seq,
                        None,
                        Some(initiator),
                        FaultOp::RdmaRead,
                        base,
                    ) {
                        Some(delay) => ctx.send_in(
                            delay,
                            target_actor,
                            Msg::Node(NodeMsg::RdmaReadArrive {
                                initiator,
                                region,
                                req_id,
                                posted: (now, seq),
                            }),
                        ),
                        None => {
                            // The retry was lost: close the re-armed window.
                            if let Some(race) = &self.race {
                                race.borrow_mut()
                                    .on_read_drop(initiator, req_id, target, region);
                            }
                        }
                    }
                    return;
                }
                if verdict == ReadVerdict::Torn {
                    self.stats.torn_reads += 1;
                }
                // Target-NIC DMA read + reply flight + initiator CQ poll.
                let base = self.cfg.nic_read + self.cfg.wire_latency + self.cfg.completion_poll;
                let Some(delay) =
                    self.apply_faults(now, seq, None, Some(initiator), FaultOp::RdmaRead, base)
                else {
                    return;
                };
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaCompletion { req_id, result }),
                );
            }

            NetMsg::RdmaWriteAck {
                initiator,
                req_id,
                result,
            } => {
                let Some(dst_actor) = self.actor_of(initiator) else {
                    self.stats.dropped += 1;
                    return;
                };
                let base = self.cfg.nic_read + self.cfg.wire_latency + self.cfg.completion_poll;
                let Some(delay) =
                    self.apply_faults(now, seq, None, Some(initiator), FaultOp::RdmaWrite, base)
                else {
                    return;
                };
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaCompletion { req_id, result }),
                );
            }

            NetMsg::McastSend {
                src,
                group,
                size,
                payload,
            } => {
                // The membership list is taken out (not cloned) for the
                // duration of the fan-out and put back afterwards, so the
                // hot path never copies it.
                let members = self
                    .mcast
                    .get_mut(&group)
                    .map(std::mem::take)
                    .unwrap_or_default();
                let mut rank = 0u64;
                for &node in &members {
                    if node == src {
                        continue;
                    }
                    let Some(dst_actor) = self.actor_of(node) else {
                        self.stats.dropped += 1;
                        continue;
                    };
                    self.stats.mcast_frames += 1;
                    // The switch replicates in hardware; replicas leave with
                    // a tiny per-port stagger. Fault fates are drawn per
                    // member in membership order, keeping them deterministic.
                    let base = self.frame_latency(size)
                        + SimDuration(self.cfg.mcast_fanout.nanos() * rank);
                    rank += 1;
                    let Some(delay) =
                        self.apply_faults(now, seq, Some(src), Some(node), FaultOp::Mcast, base)
                    else {
                        continue;
                    };
                    ctx.send_in(
                        delay,
                        dst_actor,
                        Msg::Node(NodeMsg::McastDeliver {
                            group,
                            size,
                            // Refcount bump, not a deep copy: every replica
                            // shares the sender's immutable body.
                            payload: payload.clone(), // lint: payload-clone — Arc refcount bump
                        }),
                    );
                }
                if let Some(slot) = self.mcast.get_mut(&group) {
                    *slot = members;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_registry_roundtrip() {
        let mut f = Fabric::new(NetConfig::default(), vec![ActorId(1), ActorId(2)]);
        let c = f.add_conn(NodeId(0), ServiceSlot(0), NodeId(1), ServiceSlot(3));
        assert_eq!(c, ConnId(0));
        let e = f.conn(c).unwrap();
        assert_eq!(e.b, NodeId(1));
        assert_eq!(e.svc_b, ServiceSlot(3));
        assert!(f.conn(ConnId(7)).is_none());
        assert_eq!(f.conn_count(), 1);
    }

    #[test]
    fn frame_latency_scales_with_size() {
        let f = Fabric::new(NetConfig::default(), vec![]);
        let zero = f.frame_latency(0);
        let large = f.frame_latency(64 * 1024);
        assert!(large > zero);
        assert_eq!(zero, NetConfig::default().wire_latency);
        // 64 KiB at 1 µs/KiB = 64 µs of serialization.
        assert_eq!(large - zero, SimDuration::from_micros(64));
    }

    #[test]
    fn mcast_membership_dedupes() {
        let mut f = Fabric::new(NetConfig::default(), vec![ActorId(1)]);
        f.join_mcast(McastGroup(1), NodeId(0));
        f.join_mcast(McastGroup(1), NodeId(0));
        assert_eq!(f.mcast[&McastGroup(1)].len(), 1);
    }

    #[test]
    fn empty_plan_takes_fast_path() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        assert!(f.fault_plan().is_empty());
        let base = SimDuration(100);
        let d = f.apply_faults(
            SimTime(0),
            0,
            Some(NodeId(0)),
            Some(NodeId(1)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(d, Some(base));
        assert_eq!(f.stats.fault_checks, 0);
    }

    #[test]
    fn crash_window_blackholes_frames() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(FaultPlan::new(7).crash(NodeId(1), SimTime(0), SimTime(100)));
        let base = SimDuration(10);
        let during = f.apply_faults(
            SimTime(50),
            0,
            Some(NodeId(0)),
            Some(NodeId(1)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(during, None);
        let after = f.apply_faults(
            SimTime(150),
            1,
            Some(NodeId(0)),
            Some(NodeId(1)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(after, Some(base));
        // Frames *from* the crashed node vanish too.
        let from = f.apply_faults(
            SimTime(50),
            2,
            Some(NodeId(1)),
            Some(NodeId(2)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(from, None);
        assert_eq!(f.stats.fault_crash_dropped, 2);
        assert_eq!(f.stats.fault_checks, 3);
    }

    #[test]
    fn loss_fates_replay_per_seed() {
        let run = |seed: u64| {
            let mut f = Fabric::new(NetConfig::default(), vec![]);
            f.set_fault_plan(FaultPlan::new(seed).lossy_all(0.5));
            let fates: Vec<bool> = (0..64)
                .map(|i| {
                    f.apply_faults(
                        SimTime(i),
                        i,
                        Some(NodeId(0)),
                        Some(NodeId(1)),
                        FaultOp::Socket,
                        SimDuration(10),
                    )
                    .is_some()
                })
                .collect();
            (fates, f.stats.fault_dropped)
        };
        let (fates_a, dropped_a) = run(11);
        let (fates_b, dropped_b) = run(11);
        assert_eq!(fates_a, fates_b);
        assert_eq!(dropped_a, dropped_b);
        assert!(dropped_a > 0 && dropped_a < 64, "p=0.5 should drop some");
        let (fates_c, _) = run(12);
        assert_ne!(fates_a, fates_c, "different seed should change fates");
    }

    #[test]
    fn fate_draws_are_pure_functions_of_the_event_key() {
        // The fate hash must not depend on evaluation order or fabric
        // history — that is what lets shard replicas agree with a
        // sequential fabric. Each argument must also actually matter.
        let u = fate_u(42, SimTime(1000), 7, 0);
        assert_eq!(u, fate_u(42, SimTime(1000), 7, 0));
        assert!((0.0..1.0).contains(&u));
        assert_ne!(u, fate_u(43, SimTime(1000), 7, 0), "seed ignored");
        assert_ne!(u, fate_u(42, SimTime(1001), 7, 0), "time ignored");
        assert_ne!(u, fate_u(42, SimTime(1000), 8, 0), "seq ignored");
        assert_ne!(u, fate_u(42, SimTime(1000), 7, 1), "check index ignored");
    }

    #[test]
    fn shard_replicas_decide_identical_fates() {
        let mut a = Fabric::new(NetConfig::default(), vec![]);
        a.set_fault_plan(FaultPlan::new(9).lossy_all(0.5));
        let mut replicas = a.split_for_shards(2);
        let keys: Vec<(u64, u64)> = (0..32).map(|i| (i * 10, i)).collect();
        let fate = |f: &mut Fabric, k: &(u64, u64)| {
            f.fault_check_index = 0; // what handle() does per event
            f.apply_faults(
                SimTime(k.0),
                k.1,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::Socket,
                SimDuration(10),
            )
            .is_some()
        };
        // Replica 0 sees the even events, replica 1 the odd ones (a
        // shard split); fates must match the sequential fabric's.
        for (i, k) in keys.iter().enumerate() {
            let seq_fate = fate(&mut a, k);
            let shard_fate = fate(&mut replicas[i % 2], k);
            assert_eq!(seq_fate, shard_fate, "event {i} fate diverged");
        }
        assert_eq!(
            replicas[0].stats.fault_checks + replicas[1].stats.fault_checks,
            a.stats.fault_checks
        );
        // Replicas share routing state but start with clean counters.
        assert_eq!(
            replicas[0].stats.fault_dropped + replicas[1].stats.fault_dropped,
            a.stats.fault_dropped
        );
    }

    #[test]
    fn absorb_stats_sums_every_counter() {
        let mut a = FabricStats::default();
        let mut b = FabricStats::default();
        a.rdma_reads = 3;
        a.rdma_batched_reads = 2;
        a.rdma_batch_posts = 1;
        b.rdma_reads = 4;
        b.socket_frames = 7;
        b.torn_reads = 1;
        let mut sum = FabricStats::default();
        sum.absorb(&a);
        sum.absorb(&b);
        assert_eq!(sum.rdma_reads, 7);
        assert_eq!(sum.rdma_batched_reads, 2);
        assert_eq!(sum.rdma_batch_posts, 1);
        assert_eq!(sum.socket_frames, 7);
        assert_eq!(sum.torn_reads, 1);
    }

    #[test]
    fn reset_stats_clears_every_counter() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(FaultPlan::new(3).lossy_all(0.5));
        for i in 0..32 {
            f.apply_faults(
                SimTime(i),
                i,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::Socket,
                SimDuration(10),
            );
        }
        f.stats.socket_frames += 4;
        f.stats.rdma_reads += 2;
        f.stats.torn_reads += 1;
        assert_ne!(f.stats, FabricStats::default());
        f.reset_stats();
        assert_eq!(f.stats, FabricStats::default());
        // The fault plan survives a stats reset: only the counters are
        // scenario-scoped.
        assert!(!f.fault_plan().is_empty());
    }

    #[test]
    fn congestion_and_stall_inflate_latency() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(
            FaultPlan::new(0)
                .congested(SimTime(0), SimTime(100), 4.0)
                .nic_stall(NodeId(1), SimTime(0), SimTime(100), SimDuration(7)),
        );
        let base = SimDuration(10);
        let d = f
            .apply_faults(
                SimTime(10),
                0,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::RdmaRead,
                base,
            )
            .unwrap();
        assert_eq!(d, SimDuration(47));
        let d = f
            .apply_faults(
                SimTime(200),
                1,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::RdmaRead,
                base,
            )
            .unwrap();
        assert_eq!(d, base);
        assert_eq!(f.stats.fault_delayed, 1);
    }
}
