//! The cluster fabric: a non-blocking switch connecting every node's HCA.
//!
//! Models the two transport families of the paper's §2:
//!
//! * **Channel semantics** (sockets over IPoIB): frames pay wire +
//!   serialization latency, then hit the destination NIC and take the full
//!   interrupt + protocol + scheduling path on the remote host.
//! * **Memory semantics** (RDMA read/write): the initiator posts a work
//!   request; the *target NIC* serves it against a registered region with
//!   no target-CPU involvement; the completion travels back and is picked
//!   up by the initiator's completion-queue poll.
//!
//! Hardware multicast (paper §6) replicates a frame to every subscriber
//! with a small per-destination fan-out cost.

use std::collections::HashMap;

use fgmon_sim::{Actor, ActorId, Ctx, SimDuration, SimTime};
use fgmon_types::{
    ConnId, McastGroup, Msg, NetConfig, NetMsg, NodeId, NodeMsg, Payload, ServiceSlot,
};

/// One registered point-to-point connection.
#[derive(Clone, Copy, Debug)]
pub struct ConnEntry {
    pub a: NodeId,
    pub svc_a: ServiceSlot,
    pub b: NodeId,
    pub svc_b: ServiceSlot,
}

/// Fabric statistics (observable by harnesses).
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    pub socket_frames: u64,
    pub socket_bytes: u64,
    pub rdma_reads: u64,
    pub rdma_writes: u64,
    pub mcast_frames: u64,
    pub dropped: u64,
}

/// The switch + wires actor.
pub struct Fabric {
    cfg: NetConfig,
    /// `node_actors[node.index()]` = engine id of that node's actor.
    node_actors: Vec<ActorId>,
    conns: Vec<ConnEntry>,
    mcast: HashMap<McastGroup, Vec<NodeId>>,
    pub stats: FabricStats,
}

impl Fabric {
    pub fn new(cfg: NetConfig, node_actors: Vec<ActorId>) -> Self {
        Fabric {
            cfg,
            node_actors,
            conns: Vec::new(),
            mcast: HashMap::new(),
            stats: FabricStats::default(),
        }
    }

    pub fn cfg(&self) -> &NetConfig {
        &self.cfg
    }

    /// Provide (or replace) the node-id → engine-actor table. Builders
    /// call this once every node has been created.
    pub fn set_node_actors(&mut self, node_actors: Vec<ActorId>) {
        self.node_actors = node_actors;
    }

    /// Register a connection between two services; returns its id.
    /// (Connection setup happens at cluster-build time, as the paper's
    /// monitoring processes establish their connections once at startup.)
    pub fn add_conn(&mut self, a: NodeId, svc_a: ServiceSlot, b: NodeId, svc_b: ServiceSlot) -> ConnId {
        let id = ConnId(self.conns.len() as u64);
        self.conns.push(ConnEntry { a, svc_a, b, svc_b });
        id
    }

    pub fn conn(&self, id: ConnId) -> Option<&ConnEntry> {
        self.conns.get(id.0 as usize)
    }

    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Subscribe a node to a hardware multicast group.
    pub fn join_mcast(&mut self, group: McastGroup, node: NodeId) {
        let members = self.mcast.entry(group).or_default();
        if !members.contains(&node) {
            members.push(node);
        }
    }

    /// Wire + serialization latency for a frame of `size` bytes.
    fn frame_latency(&self, size: u32) -> SimDuration {
        self.cfg.wire_latency + SimDuration(self.cfg.per_kb.nanos() * (size as u64) / 1024)
    }

    fn actor_of(&self, node: NodeId) -> Option<ActorId> {
        self.node_actors.get(node.index()).copied()
    }

    fn deliver_socket(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        src: NodeId,
        conn: ConnId,
        size: u32,
        payload: Payload,
    ) {
        let Some(entry) = self.conn(conn).copied() else {
            self.stats.dropped += 1;
            return;
        };
        let (dst, dst_service) = if src == entry.a {
            (entry.b, entry.svc_b)
        } else {
            (entry.a, entry.svc_a)
        };
        let Some(dst_actor) = self.actor_of(dst) else {
            self.stats.dropped += 1;
            return;
        };
        self.stats.socket_frames += 1;
        self.stats.socket_bytes += size as u64;
        let delay = self.frame_latency(size);
        ctx.send_in(
            delay,
            dst_actor,
            Msg::Node(NodeMsg::PacketArrive {
                conn,
                dst_service,
                size,
                payload,
            }),
        );
    }
}

impl Actor<Msg> for Fabric {
    fn handle(&mut self, _now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Msg::Net(msg) = msg else {
            debug_assert!(false, "fabric received a node message");
            return;
        };
        match msg {
            NetMsg::SocketSend {
                src,
                conn,
                size,
                payload,
            } => self.deliver_socket(ctx, src, conn, size, payload),

            NetMsg::RdmaRead {
                src,
                dst,
                region,
                req_id,
            } => {
                let Some(dst_actor) = self.actor_of(dst) else {
                    self.stats.dropped += 1;
                    return;
                };
                self.stats.rdma_reads += 1;
                // Initiator post overhead + request flight.
                let delay = self.cfg.rdma_post + self.cfg.wire_latency;
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaReadArrive {
                        initiator: src,
                        region,
                        req_id,
                    }),
                );
            }

            NetMsg::RdmaWrite {
                src,
                dst,
                region,
                req_id,
                data,
            } => {
                let Some(dst_actor) = self.actor_of(dst) else {
                    self.stats.dropped += 1;
                    return;
                };
                self.stats.rdma_writes += 1;
                let delay = self.cfg.rdma_post + self.cfg.wire_latency;
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaWriteArrive {
                        initiator: src,
                        region,
                        req_id,
                        data,
                    }),
                );
            }

            NetMsg::RdmaReadData {
                initiator,
                req_id,
                result,
            } => {
                let Some(dst_actor) = self.actor_of(initiator) else {
                    self.stats.dropped += 1;
                    return;
                };
                // Target-NIC DMA read + reply flight + initiator CQ poll.
                let delay = self.cfg.nic_read + self.cfg.wire_latency + self.cfg.completion_poll;
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaCompletion { req_id, result }),
                );
            }

            NetMsg::RdmaWriteAck {
                initiator,
                req_id,
                result,
            } => {
                let Some(dst_actor) = self.actor_of(initiator) else {
                    self.stats.dropped += 1;
                    return;
                };
                let delay = self.cfg.nic_read + self.cfg.wire_latency + self.cfg.completion_poll;
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaCompletion { req_id, result }),
                );
            }

            NetMsg::McastSend {
                src,
                group,
                size,
                payload,
            } => {
                let members = self.mcast.get(&group).cloned().unwrap_or_default();
                let mut rank = 0u64;
                for node in members {
                    if node == src {
                        continue;
                    }
                    let Some(dst_actor) = self.actor_of(node) else {
                        self.stats.dropped += 1;
                        continue;
                    };
                    self.stats.mcast_frames += 1;
                    // The switch replicates in hardware; replicas leave with
                    // a tiny per-port stagger.
                    let delay = self.frame_latency(size)
                        + SimDuration(self.cfg.mcast_fanout.nanos() * rank);
                    rank += 1;
                    ctx.send_in(
                        delay,
                        dst_actor,
                        Msg::Node(NodeMsg::McastDeliver {
                            group,
                            size,
                            payload: payload.clone(),
                        }),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_registry_roundtrip() {
        let mut f = Fabric::new(NetConfig::default(), vec![ActorId(1), ActorId(2)]);
        let c = f.add_conn(NodeId(0), ServiceSlot(0), NodeId(1), ServiceSlot(3));
        assert_eq!(c, ConnId(0));
        let e = f.conn(c).unwrap();
        assert_eq!(e.b, NodeId(1));
        assert_eq!(e.svc_b, ServiceSlot(3));
        assert!(f.conn(ConnId(7)).is_none());
        assert_eq!(f.conn_count(), 1);
    }

    #[test]
    fn frame_latency_scales_with_size() {
        let f = Fabric::new(NetConfig::default(), vec![]);
        let zero = f.frame_latency(0);
        let large = f.frame_latency(64 * 1024);
        assert!(large > zero);
        assert_eq!(zero, NetConfig::default().wire_latency);
        // 64 KiB at 1 µs/KiB = 64 µs of serialization.
        assert_eq!(large - zero, SimDuration::from_micros(64));
    }

    #[test]
    fn mcast_membership_dedupes() {
        let mut f = Fabric::new(NetConfig::default(), vec![ActorId(1)]);
        f.join_mcast(McastGroup(1), NodeId(0));
        f.join_mcast(McastGroup(1), NodeId(0));
        assert_eq!(f.mcast[&McastGroup(1)].len(), 1);
    }
}
