//! The cluster fabric: a non-blocking switch connecting every node's HCA.
//!
//! Models the two transport families of the paper's §2:
//!
//! * **Channel semantics** (sockets over IPoIB): frames pay wire +
//!   serialization latency, then hit the destination NIC and take the full
//!   interrupt + protocol + scheduling path on the remote host.
//! * **Memory semantics** (RDMA read/write): the initiator posts a work
//!   request; the *target NIC* serves it against a registered region with
//!   no target-CPU involvement; the completion travels back and is picked
//!   up by the initiator's completion-queue poll.
//!
//! Hardware multicast (paper §6) replicates a frame to every subscriber
//! with a small per-destination fan-out cost.

use std::collections::BTreeMap;

use fgmon_sim::{Actor, ActorId, Ctx, SimDuration, SimTime};
use fgmon_types::{
    ConnId, FaultOp, FaultPlan, McastGroup, Msg, NetConfig, NetMsg, NodeId, NodeMsg, Payload,
    QosPolicy, RdmaResult, ReadVerdict, ServiceSlot, SharedRaceDetector, TenancyConfig, TenantId,
    TenantStats, TokenBucket, MAX_TENANTS,
};

/// One registered point-to-point connection.
#[derive(Clone, Copy, Debug)]
pub struct ConnEntry {
    pub a: NodeId,
    pub svc_a: ServiceSlot,
    pub b: NodeId,
    pub svc_b: ServiceSlot,
}

/// Fabric statistics (observable by harnesses).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    pub socket_frames: u64,
    pub socket_bytes: u64,
    pub rdma_reads: u64,
    pub rdma_writes: u64,
    pub mcast_frames: u64,
    pub dropped: u64,
    /// Frames evaluated against an active [`FaultPlan`].
    pub fault_checks: u64,
    /// Frames dropped by a loss rule.
    pub fault_dropped: u64,
    /// Frames dropped because an endpoint was fail-stopped.
    pub fault_crash_dropped: u64,
    /// Frames whose latency was inflated by congestion or a NIC stall.
    pub fault_delayed: u64,
    /// Frames dropped by an asymmetric partition rule.
    pub fault_partitioned: u64,
    /// Socket frames delivered a second time by a duplication rule.
    pub fault_duplicated: u64,
    /// Frames held back (extra delay) by a reordering rule.
    pub fault_reordered: u64,
    /// Snapshot payloads bit-corrupted in flight (seal left stale).
    pub fault_corrupted: u64,
    /// Snapshot payloads whose reported timestamp was clock-skewed.
    pub fault_skewed: u64,
    /// One-sided reads whose target region was written mid-flight
    /// (race checker in strict mode).
    pub torn_reads: u64,
    /// Seqlock-mode re-reads issued after a version-check mismatch.
    pub seqlock_retries: u64,
    /// Read completions answered `RegionInvalidated` (stale registration
    /// after a target restart).
    pub region_invalidated: u64,
    /// Reads that traveled inside a coalesced doorbell batch
    /// ([`NetMsg::RdmaReadBatch`]); also counted in `rdma_reads`.
    pub rdma_batched_reads: u64,
    /// Doorbell batches posted (one per `RdmaReadBatch` frame).
    pub rdma_batch_posts: u64,
    /// One-sided compare-and-swap ops posted.
    pub rdma_atomics: u64,
    /// Per-tenant offered load, QoS drops, and contention outcomes.
    /// Indexed by `TenantId`; all zero until a tenancy config is
    /// installed, so pre-tenancy fingerprints are unchanged.
    pub tenants: [TenantStats; MAX_TENANTS],
}

impl FabricStats {
    /// Fold another stats block into this one (shard-replica merge).
    pub fn absorb(&mut self, o: &FabricStats) {
        self.socket_frames += o.socket_frames;
        self.socket_bytes += o.socket_bytes;
        self.rdma_reads += o.rdma_reads;
        self.rdma_writes += o.rdma_writes;
        self.mcast_frames += o.mcast_frames;
        self.dropped += o.dropped;
        self.fault_checks += o.fault_checks;
        self.fault_dropped += o.fault_dropped;
        self.fault_crash_dropped += o.fault_crash_dropped;
        self.fault_delayed += o.fault_delayed;
        self.fault_partitioned += o.fault_partitioned;
        self.fault_duplicated += o.fault_duplicated;
        self.fault_reordered += o.fault_reordered;
        self.fault_corrupted += o.fault_corrupted;
        self.fault_skewed += o.fault_skewed;
        self.torn_reads += o.torn_reads;
        self.seqlock_retries += o.seqlock_retries;
        self.region_invalidated += o.region_invalidated;
        self.rdma_batched_reads += o.rdma_batched_reads;
        self.rdma_batch_posts += o.rdma_batch_posts;
        self.rdma_atomics += o.rdma_atomics;
        for (mine, theirs) in self.tenants.iter_mut().zip(o.tenants.iter()) {
            mine.absorb(theirs);
        }
    }
}

/// The switch + wires actor.
pub struct Fabric {
    cfg: NetConfig,
    /// `node_actors[node.index()]` = engine id of that node's actor.
    node_actors: Vec<ActorId>,
    conns: Vec<ConnEntry>,
    mcast: BTreeMap<McastGroup, Vec<NodeId>>,
    /// Node pairs that exchange one-sided RDMA verbs without a
    /// registered connection (the lock service's CAS traffic): declared
    /// at build time so the shard-split channel graph covers them. Part
    /// of the immutable routing state shard replicas share.
    declared_routes: Vec<(NodeId, NodeId)>,
    /// Fault schedule; `fault_active` is true iff the plan has rules, so
    /// fault-free runs evaluate zero fates and stay bit-identical to
    /// builds that predate fault injection.
    plan: FaultPlan,
    fault_active: bool,
    /// True iff the plan has payload-mutating rules (clock skew,
    /// corruption); cached so the common case costs one boolean test.
    payload_faults: bool,
    /// Per-event fate counter: reset when an event arrives, bumped per
    /// fate evaluation. Makes every fate a pure function of
    /// `(plan seed, event time, event seq, check index)` — the same on
    /// whichever shard's replica handles the event.
    fault_check_index: u32,
    /// Shadow-state torn-read detector, shared with every node's OS core;
    /// `None` when race checking is off (zero overhead).
    race: Option<SharedRaceDetector>,
    /// `tenants[node.index()]` = that node's tenant; absent entries are
    /// the infrastructure tenant. Immutable routing state (shared by
    /// shard replicas).
    tenants: Vec<TenantId>,
    /// NIC-contention model + QoS policy; `None` keeps the fabric
    /// tenancy-blind and bit-identical to pre-tenancy builds.
    tenancy: Option<TenancyConfig>,
    /// Rate-limit buckets, one per *source* node. A post is only ever
    /// handled on its source's shard (the source sent it same-instant),
    /// so each bucket is touched from exactly one shard.
    limiters: Vec<TokenBucket>,
    /// QP-cache pressure per *target* node: `(window index, ops)` for
    /// the aligned window the target is currently in. Completion legs
    /// are only ever handled on the target's shard (the target sent
    /// them same-instant), so each slot is touched from exactly one
    /// shard — the same routing invariant the race detector leans on.
    pressure: Vec<(u64, u32)>,
    pub stats: FabricStats,
}

/// Salt separating contention-shed fate draws from fault-plan draws.
const CONTENTION_SALT: u64 = 0x7E4A_9C3D_51B6_20E7;

/// `splitmix64` finalizer: a full-avalanche 64-bit mix.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform fate draw in `[0, 1)` as a pure function of the plan seed and
/// the handling event's engine key. Replaces a sequential RNG stream so
/// fates do not depend on how events interleave across shards.
#[inline]
fn fate_u(seed: u64, now: SimTime, seq: u64, idx: u32) -> f64 {
    let h = mix64(seed ^ mix64(now.0 ^ mix64(seq ^ mix64(idx as u64 ^ 0x9E37_79B9_7F4A_7C15))));
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Fabric {
    pub fn new(cfg: NetConfig, node_actors: Vec<ActorId>) -> Self {
        Fabric {
            cfg,
            node_actors,
            conns: Vec::new(),
            mcast: BTreeMap::new(),
            declared_routes: Vec::new(),
            plan: FaultPlan::default(),
            fault_active: false,
            payload_faults: false,
            fault_check_index: 0,
            race: None,
            tenants: Vec::new(),
            tenancy: None,
            limiters: Vec::new(),
            pressure: Vec::new(),
            stats: FabricStats::default(),
        }
    }

    /// Build per-shard replicas for the parallel executor. Replicas share
    /// the immutable routing state (connection table, multicast
    /// membership, node table, fault plan, race-detector handle) and
    /// start with fresh counters; fault fates are a pure function of the
    /// plan seed and each event's engine key, so every replica decides
    /// identical fates for identical events.
    pub fn split_for_shards(&self, shards: usize) -> Vec<Fabric> {
        (0..shards)
            .map(|_| Fabric {
                cfg: self.cfg,
                node_actors: self.node_actors.clone(),
                conns: self.conns.clone(),
                mcast: self.mcast.clone(),
                declared_routes: self.declared_routes.clone(),
                plan: self.plan.clone(),
                fault_active: self.fault_active,
                payload_faults: self.payload_faults,
                fault_check_index: 0,
                race: self.race.clone(),
                tenants: self.tenants.clone(),
                tenancy: self.tenancy,
                // Per-node QoS/contention state is replicated as-is:
                // each slot is only ever touched from the one shard
                // that owns the node (posts on the source's shard,
                // completions on the target's), so replicas evolve
                // exactly the slots the sequential fabric would.
                limiters: self.limiters.clone(),
                pressure: self.pressure.clone(),
                stats: FabricStats::default(),
            })
            .collect()
    }

    /// Static lower bound on every fabric→node delivery latency: all
    /// delivery legs include at least one wire crossing, congestion
    /// multipliers are validated `>= 1`, and NIC stalls only add delay.
    /// The parallel executor uses this as its bounded-lag lookahead.
    pub fn lookahead(&self) -> SimDuration {
        self.cfg.wire_latency
    }

    pub fn cfg(&self) -> &NetConfig {
        &self.cfg
    }

    /// Attach the cluster-wide race detector (builder wiring).
    pub fn set_race_detector(&mut self, detector: SharedRaceDetector) {
        self.race = Some(detector);
    }

    /// Reset all frame/fault counters to zero. Harnesses that re-run
    /// scenarios on a reused fabric must call this between runs, or the
    /// second run's stats silently include the first run's traffic.
    pub fn reset_stats(&mut self) {
        self.stats = FabricStats::default();
    }

    /// Install a fault schedule. Fate draws hash the plan's own seed with
    /// each event's engine key, so identical (seed, plan) pairs replay
    /// identical fates regardless of what the rest of the simulation
    /// draws — and regardless of event interleaving across shards.
    ///
    /// # Panics
    /// Panics if the plan fails [`FaultPlan::validate`].
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        self.fault_active = !plan.is_empty();
        self.payload_faults = plan.has_payload_faults();
        self.plan = plan;
    }

    pub fn fault_plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Assign a node to a tenant (build-time wiring). Unassigned nodes
    /// belong to the infrastructure tenant.
    ///
    /// # Panics
    /// Panics if the tenant is outside the fixed stats table.
    pub fn set_node_tenant(&mut self, node: NodeId, tenant: TenantId) {
        assert!(
            tenant.index() < MAX_TENANTS,
            "tenant {tenant} outside the {MAX_TENANTS}-wide tenant table"
        );
        if self.tenants.len() <= node.index() {
            self.tenants.resize(node.index() + 1, TenantId::INFRA);
        }
        self.tenants[node.index()] = tenant;
    }

    /// Install the NIC-contention model and QoS policy. Without this
    /// call the fabric is tenancy-blind and behaves bit-identically to
    /// pre-tenancy builds.
    pub fn set_tenancy(&mut self, cfg: TenancyConfig) {
        assert!(
            cfg.contention.window.nanos() > 0,
            "contention window must be positive"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.contention.overload_drop),
            "overload_drop must be a probability"
        );
        self.tenancy = Some(cfg);
    }

    pub fn tenancy(&self) -> Option<&TenancyConfig> {
        self.tenancy.as_ref()
    }

    fn tenant_of(&self, node: NodeId) -> TenantId {
        self.tenants
            .get(node.index())
            .copied()
            .unwrap_or(TenantId::INFRA)
    }

    /// Source-NIC admission for one posted frame (or one doorbell
    /// batch): count it against the posting tenant and enforce the
    /// rate-limit QoS. Runs while handling the post event, which the
    /// source node sent same-instant — i.e. on the source's shard — so
    /// the per-source bucket is shard-local state.
    fn admit_post(&mut self, now: SimTime, src: NodeId) -> bool {
        let Some(tc) = self.tenancy else {
            return true;
        };
        let tenant = self.tenant_of(src);
        self.stats.tenants[tenant.index()].posted += 1;
        let QosPolicy::RateLimit {
            ops_per_window,
            window,
        } = tc.qos
        else {
            return true;
        };
        if tenant == tc.priority_tenant {
            return true;
        }
        let idx = src.index();
        if self.limiters.len() <= idx {
            self.limiters
                .resize(idx + 1, TokenBucket::new(ops_per_window, window));
        }
        if self.limiters[idx].try_admit(now) {
            true
        } else {
            self.stats.tenants[tenant.index()].rate_limited += 1;
            false
        }
    }

    /// Target-NIC contention for one one-sided completion leg: bump the
    /// serving NIC's QP-cache window pressure, then decide whether this
    /// completion thrashes (pays extra latency) or is shed outright.
    /// Runs while handling the completion event, which the target node
    /// sent same-instant — i.e. on the target's shard — so the
    /// per-target pressure slot is shard-local, exactly like the race
    /// detector's shadow state. Returns the extra latency, or `None` if
    /// the overloaded NIC shed the completion.
    fn apply_contention(
        &mut self,
        now: SimTime,
        seq: u64,
        target: NodeId,
        initiator: NodeId,
    ) -> Option<SimDuration> {
        let Some(tc) = self.tenancy else {
            return Some(SimDuration::ZERO);
        };
        let tenant = self.tenant_of(initiator);
        self.stats.tenants[tenant.index()].completions += 1;
        // The QP cache is physically shared: every completion the
        // target serves occupies a slot, whatever its tenant.
        let win = now.nanos() / tc.contention.window.nanos();
        let idx = target.index();
        if self.pressure.len() <= idx {
            self.pressure.resize(idx + 1, (0, 0));
        }
        let slot = &mut self.pressure[idx];
        if slot.0 != win {
            *slot = (win, 0);
        }
        slot.1 += 1;
        let ops = slot.1;
        // A prioritized monitoring QP class rides reserved slots: the
        // priority tenant's completions occupy the cache but never pay.
        if matches!(tc.qos, QosPolicy::PriorityQp) && tenant == tc.priority_tenant {
            return Some(SimDuration::ZERO);
        }
        if ops <= tc.contention.qp_cache_slots {
            return Some(SimDuration::ZERO);
        }
        if ops > tc.contention.overload_slots {
            // Same pure-interposer style as fault fates; a distinct
            // salt keeps shed draws from perturbing fault draws.
            let draw = self.fault_check_index;
            self.fault_check_index += 1;
            let u = fate_u(self.plan.seed ^ CONTENTION_SALT, now, seq, draw);
            if u < tc.contention.overload_drop {
                self.stats.tenants[tenant.index()].contention_dropped += 1;
                return None;
            }
        }
        self.stats.tenants[tenant.index()].thrashed += 1;
        Some(tc.contention.thrash_penalty)
    }

    /// Decide one frame's fate under the active plan: `None` means the
    /// frame is lost, otherwise the (possibly inflated) flight latency.
    ///
    /// Completion legs (read-data, write-ack) only carry the initiator,
    /// so the unknown endpoint is passed as `None` and matches wildcard
    /// rules only. Exactly one fate draw happens per checked frame, which
    /// keeps fault fates independent of how many rules match. `seq` is
    /// the engine key of the event being handled; together with the
    /// per-event check counter it makes each draw a pure function of the
    /// event, not of the fabric's history.
    fn apply_faults(
        &mut self,
        now: SimTime,
        seq: u64,
        src: Option<NodeId>,
        dst: Option<NodeId>,
        op: FaultOp,
        base: SimDuration,
    ) -> Option<SimDuration> {
        if !self.fault_active {
            return Some(base);
        }
        self.stats.fault_checks += 1;
        let idx = self.fault_check_index;
        self.fault_check_index += 1;
        let u = fate_u(self.plan.seed, now, seq, idx);
        if src.is_some_and(|n| self.plan.crashed(n, now))
            || dst.is_some_and(|n| self.plan.crashed(n, now))
        {
            self.stats.fault_crash_dropped += 1;
            return None;
        }
        // Asymmetric partitions are deterministic physics, not dice: a
        // severed direction drops every matching frame, the reverse
        // direction is untouched.
        if self.plan.partitioned(src, dst, now) {
            self.stats.fault_partitioned += 1;
            return None;
        }
        if u < self.plan.loss_probability(src, dst, op, now) {
            self.stats.fault_dropped += 1;
            return None;
        }
        // Latency inflation: cluster-wide congestion times the sick-NIC
        // multiplier of each known endpoint (a slow NIC serves both its
        // own posts and reads against it slowly — the gray failure).
        let mut mult = self.plan.latency_mult(now);
        if let Some(n) = src {
            mult *= self.plan.slow_nic_mult(n, now);
        }
        if let Some(n) = dst {
            mult *= self.plan.slow_nic_mult(n, now);
        }
        let mut delay = base.mul_f64(mult);
        if let Some(n) = src {
            delay += self.plan.stall_extra(n, now);
        }
        if let Some(n) = dst {
            delay += self.plan.stall_extra(n, now);
        }
        // Reordering = probabilistic hold-back: in a discrete-event
        // fabric the held frame arrives after frames sent later, which
        // is all reordering ever is on a wire. The extra draw happens
        // only when a matching rule is live, so plans without reorder
        // rules evaluate the exact draw sequence they always did.
        let (rp, extra) = self.plan.reorder_probability(src, dst, op, now);
        if rp > 0.0 {
            let idx = self.fault_check_index;
            self.fault_check_index += 1;
            if fate_u(self.plan.seed, now, seq, idx) < rp {
                delay += extra;
                self.stats.fault_reordered += 1;
            }
        }
        if delay != base {
            self.stats.fault_delayed += 1;
        }
        Some(delay)
    }

    /// Mutate a snapshot in flight according to the payload fault rules:
    /// clock skew shifts the *reported* timestamp and re-seals (the
    /// producer's clock was wrong when it stamped and sealed, so the
    /// seal legitimately covers the wrong value); bit-corruption
    /// perturbs content fields and leaves the seal stale, which is what
    /// makes it detectable at the client. Draws ride the same per-event
    /// counter as frame fates.
    fn apply_payload_faults(
        &mut self,
        now: SimTime,
        seq: u64,
        producer: NodeId,
        snap: &mut fgmon_types::LoadSnapshot,
    ) {
        if !self.payload_faults {
            return;
        }
        let skew = self.plan.clock_skew_nanos(producer, now);
        if skew != 0 {
            let shifted = (snap.measured_at.0 as i64).saturating_add(skew).max(0) as u64;
            snap.measured_at = SimTime(shifted);
            if snap.checksum != 0 {
                *snap = snap.sealed();
            }
            self.stats.fault_skewed += 1;
        }
        let p = self.plan.corrupt_probability(producer, now);
        if p > 0.0 {
            let idx = self.fault_check_index;
            self.fault_check_index += 1;
            if fate_u(self.plan.seed, now, seq, idx) < p {
                // Flip bits in integer content fields. `| 1` guarantees
                // each XOR mask is nonzero, so the content always
                // changes and a sealed snapshot always fails its check.
                let mask = mix64(self.plan.seed ^ mix64(now.0 ^ seq));
                snap.run_queue ^= (mask as u32) | 1;
                snap.mem_used_kb ^= (mask >> 8) | 1;
                snap.nthreads ^= ((mask >> 32) as u32) | 1;
                self.stats.fault_corrupted += 1;
            }
        }
    }

    /// Duplication fate for one socket frame: `Some(echo_delay)` when an
    /// active rule fires. Socket frames only — the RC transport that
    /// RDMA verbs ride guarantees exactly-once execution in hardware.
    fn duplicate_fate(&mut self, now: SimTime, seq: u64) -> Option<SimDuration> {
        if !self.fault_active {
            return None;
        }
        let (p, echo) = self.plan.duplicate_probability(now);
        if p <= 0.0 {
            return None;
        }
        let idx = self.fault_check_index;
        self.fault_check_index += 1;
        if fate_u(self.plan.seed, now, seq, idx) < p {
            self.stats.fault_duplicated += 1;
            Some(echo)
        } else {
            None
        }
    }

    /// Provide (or replace) the node-id → engine-actor table. Builders
    /// call this once every node has been created.
    pub fn set_node_actors(&mut self, node_actors: Vec<ActorId>) {
        self.node_actors = node_actors;
    }

    /// Register a connection between two services; returns its id.
    /// (Connection setup happens at cluster-build time, as the paper's
    /// monitoring processes establish their connections once at startup.)
    pub fn add_conn(
        &mut self,
        a: NodeId,
        svc_a: ServiceSlot,
        b: NodeId,
        svc_b: ServiceSlot,
    ) -> ConnId {
        let id = ConnId(self.conns.len() as u64);
        self.conns.push(ConnEntry { a, svc_a, b, svc_b });
        id
    }

    pub fn conn(&self, id: ConnId) -> Option<&ConnEntry> {
        self.conns.get(id.0 as usize)
    }

    pub fn conn_count(&self) -> usize {
        self.conns.len()
    }

    /// Subscribe a node to a hardware multicast group.
    pub fn join_mcast(&mut self, group: McastGroup, node: NodeId) {
        let members = self.mcast.entry(group).or_default();
        if !members.contains(&node) {
            members.push(node);
        }
    }

    /// Declare that `a` and `b` exchange frames outside any registered
    /// connection (one-sided RDMA verbs address nodes directly). Builders
    /// must declare every such pair: the parallel executor derives its
    /// shard channel graph from [`Fabric::chatter_edges`], and traffic
    /// crossing an undeclared channel aborts the run.
    pub fn declare_route(&mut self, a: NodeId, b: NodeId) {
        if a != b && !self.declared_routes.contains(&(a, b)) {
            self.declared_routes.push((a, b));
        }
    }

    /// The static node-chatter graph: weighted undirected edges between
    /// every node pair that can exchange frames, derived from the
    /// routing state (connection table, multicast membership, declared
    /// RDMA routes). This is the shard-split route metadata the parallel
    /// executor partitions on — affinity grouping uses the weights,
    /// channel derivation the pairs. Deterministic: edges come out in
    /// ascending `(a, b)` order.
    pub fn chatter_edges(&self) -> Vec<(NodeId, NodeId, u64)> {
        let mut weights: BTreeMap<(u16, u16), u64> = BTreeMap::new();
        let mut bump = |a: NodeId, b: NodeId, w: u64| {
            if a != b {
                let key = if a.0 <= b.0 { (a.0, b.0) } else { (b.0, a.0) };
                *weights.entry(key).or_insert(0) += w;
            }
        };
        // A connection carries request *and* completion legs; weight it
        // above a multicast co-membership, which most pairs only share
        // for occasional pushes.
        for c in &self.conns {
            bump(c.a, c.b, 4);
        }
        for (a, b) in &self.declared_routes {
            bump(*a, *b, 4);
        }
        for members in self.mcast.values() {
            for (i, &a) in members.iter().enumerate() {
                for &b in &members[i + 1..] {
                    bump(a, b, 1);
                }
            }
        }
        weights
            .into_iter()
            .map(|((a, b), w)| (NodeId(a), NodeId(b), w))
            .collect()
    }

    /// Wire + serialization latency for a frame of `size` bytes.
    fn frame_latency(&self, size: u32) -> SimDuration {
        self.cfg.wire_latency + SimDuration(self.cfg.per_kb.nanos() * (size as u64) / 1024)
    }

    fn actor_of(&self, node: NodeId) -> Option<ActorId> {
        self.node_actors.get(node.index()).copied()
    }

    fn deliver_socket(
        &mut self,
        ctx: &mut Ctx<'_, Msg>,
        // `(now, seq)` of the send event — the fault-fate key.
        (now, seq): (SimTime, u64),
        src: NodeId,
        conn: ConnId,
        size: u32,
        mut payload: Payload,
    ) {
        if !self.admit_post(now, src) {
            return;
        }
        let Some(entry) = self.conn(conn).copied() else {
            self.stats.dropped += 1;
            return;
        };
        let (dst, dst_service) = if src == entry.a {
            (entry.b, entry.svc_b)
        } else {
            (entry.a, entry.svc_a)
        };
        let Some(dst_actor) = self.actor_of(dst) else {
            self.stats.dropped += 1;
            return;
        };
        self.stats.socket_frames += 1;
        self.stats.socket_bytes += size as u64;
        let base = self.frame_latency(size);
        let Some(delay) = self.apply_faults(now, seq, Some(src), Some(dst), FaultOp::Socket, base)
        else {
            return;
        };
        // Monitor replies carry a load snapshot produced by the sender:
        // the payload fault rules (skew, corruption) apply in flight.
        if let Payload::MonitorReply { snap, .. } = &mut payload {
            self.apply_payload_faults(now, seq, src, snap);
        }
        if let Some(echo) = self.duplicate_fate(now, seq) {
            ctx.send_in(
                delay + echo,
                dst_actor,
                Msg::Node(NodeMsg::PacketArrive {
                    conn,
                    dst_service,
                    size,
                    // The echo shares the sender's body; frames without a
                    // duplication fate are moved, never copied.
                    payload: payload.clone(), // lint: payload-clone — duplication echo shares the body
                }),
            );
        }
        ctx.send_in(
            delay,
            dst_actor,
            Msg::Node(NodeMsg::PacketArrive {
                conn,
                dst_service,
                size,
                payload,
            }),
        );
    }
}

impl Actor<Msg> for Fabric {
    fn handle(&mut self, now: SimTime, msg: Msg, ctx: &mut Ctx<'_, Msg>) {
        let Msg::Net(msg) = msg else {
            debug_assert!(false, "fabric received a node message");
            return;
        };
        // Fate draws are keyed by this event; restart the per-event
        // check counter (see `apply_faults`).
        self.fault_check_index = 0;
        let seq = ctx.event_seq;
        match msg {
            NetMsg::SocketSend {
                src,
                conn,
                size,
                payload,
            } => self.deliver_socket(ctx, (now, seq), src, conn, size, payload),

            NetMsg::RdmaRead {
                src,
                dst,
                region,
                req_id,
            } => {
                if !self.admit_post(now, src) {
                    return;
                }
                let Some(dst_actor) = self.actor_of(dst) else {
                    self.stats.dropped += 1;
                    return;
                };
                self.stats.rdma_reads += 1;
                // Initiator post overhead + request flight.
                let base = self.cfg.rdma_post + self.cfg.wire_latency;
                let Some(delay) =
                    self.apply_faults(now, seq, Some(src), Some(dst), FaultOp::RdmaRead, base)
                else {
                    return;
                };
                // The post's engine key rides along; the target opens the
                // shadow read window on arrival, reconstructing the epoch
                // as of this key. (Lost frames never open a window.)
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaReadArrive {
                        initiator: src,
                        region,
                        req_id,
                        posted: (now, seq),
                    }),
                );
            }

            NetMsg::RdmaReadBatch { src, reads } => {
                // One doorbell ring posts the whole batch (RDMAbox-style
                // request merging): the initiator paid `rdma_post` once,
                // and the simulator pays one fabric event instead of one
                // per read. Each read then flies and is served
                // independently, with its own fate draw. The doorbell
                // ring is one posted op for QoS purposes.
                if !self.admit_post(now, src) {
                    return;
                }
                self.stats.rdma_batch_posts += 1;
                for r in reads {
                    let Some(dst_actor) = self.actor_of(r.dst) else {
                        self.stats.dropped += 1;
                        continue;
                    };
                    self.stats.rdma_reads += 1;
                    self.stats.rdma_batched_reads += 1;
                    let base = self.cfg.rdma_post + self.cfg.wire_latency;
                    let Some(delay) = self.apply_faults(
                        now,
                        seq,
                        Some(src),
                        Some(r.dst),
                        FaultOp::RdmaRead,
                        base,
                    ) else {
                        continue;
                    };
                    ctx.send_in(
                        delay,
                        dst_actor,
                        Msg::Node(NodeMsg::RdmaReadArrive {
                            initiator: src,
                            region: r.region,
                            req_id: r.req_id,
                            posted: (now, seq),
                        }),
                    );
                }
            }

            NetMsg::RdmaWrite {
                src,
                dst,
                region,
                req_id,
                mut data,
            } => {
                if !self.admit_post(now, src) {
                    return;
                }
                let Some(dst_actor) = self.actor_of(dst) else {
                    self.stats.dropped += 1;
                    return;
                };
                self.stats.rdma_writes += 1;
                let base = self.cfg.rdma_post + self.cfg.wire_latency;
                let Some(delay) =
                    self.apply_faults(now, seq, Some(src), Some(dst), FaultOp::RdmaWrite, base)
                else {
                    return;
                };
                // Pushed snapshots are payloads in flight like any other;
                // the producer is the writing node.
                if let fgmon_types::RegionData::Snapshot(snap) = &mut data {
                    self.apply_payload_faults(now, seq, src, snap);
                }
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaWriteArrive {
                        initiator: src,
                        region,
                        req_id,
                        data,
                    }),
                );
            }

            NetMsg::RdmaCas {
                src,
                dst,
                region,
                req_id,
                word,
                expected,
                swap,
            } => {
                if !self.admit_post(now, src) {
                    return;
                }
                let Some(dst_actor) = self.actor_of(dst) else {
                    self.stats.dropped += 1;
                    return;
                };
                self.stats.rdma_atomics += 1;
                // Atomics ride the write path of the fault model: same
                // post + request-flight cost, same `RdmaWrite` fault op
                // (they are one-sided mutations, and the plans have no
                // reason to distinguish them).
                let base = self.cfg.rdma_post + self.cfg.wire_latency;
                let Some(delay) =
                    self.apply_faults(now, seq, Some(src), Some(dst), FaultOp::RdmaWrite, base)
                else {
                    return;
                };
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaCasArrive {
                        initiator: src,
                        region,
                        req_id,
                        word,
                        expected,
                        swap,
                    }),
                );
            }

            NetMsg::RdmaReadData {
                initiator,
                req_id,
                mut result,
                target,
                region,
                posted: _,
            } => {
                let Some(dst_actor) = self.actor_of(initiator) else {
                    self.stats.dropped += 1;
                    return;
                };
                if matches!(result, RdmaResult::RegionInvalidated) {
                    self.stats.region_invalidated += 1;
                }
                // Close the shadow read window: the data just left the
                // target NIC, so any host write since the post tore it.
                // This event was sent by the target node same-instant, so
                // it runs on the target's shard — the detector state for
                // (target, region) is only ever touched from there.
                let verdict = match &self.race {
                    Some(race) => race.borrow_mut().on_read_complete(
                        initiator,
                        req_id,
                        target,
                        region,
                        (now, seq),
                    ),
                    None => ReadVerdict::Clean,
                };
                // A version-check retry only makes sense on data that was
                // actually served: error completions (RegionInvalidated,
                // AccessDenied) carry no record to re-read, so they close
                // their re-armed window and fly back as-is.
                if !matches!(result, RdmaResult::ReadOk { .. }) {
                    if matches!(verdict, ReadVerdict::Retry { .. }) {
                        if let Some(race) = &self.race {
                            race.borrow_mut()
                                .on_read_drop(initiator, req_id, target, region);
                        }
                    }
                } else if let ReadVerdict::Retry { .. } = verdict {
                    self.stats.seqlock_retries += 1;
                    let Some(target_actor) = self.actor_of(target) else {
                        self.stats.dropped += 1;
                        return;
                    };
                    // Reader-side seqlock retry: the torn data still flies
                    // back (full return leg), the reader's version check
                    // rejects it, and a fresh read is posted — one extra
                    // round trip plus the modeled check per attempt. The
                    // re-armed window was stamped with this event's key.
                    let base = self.cfg.nic_read
                        + self.cfg.wire_latency
                        + self.cfg.completion_poll
                        + self.cfg.seqlock_check
                        + self.cfg.rdma_post
                        + self.cfg.wire_latency;
                    match self.apply_faults(
                        now,
                        seq,
                        None,
                        Some(initiator),
                        FaultOp::RdmaRead,
                        base,
                    ) {
                        Some(delay) => ctx.send_in(
                            delay,
                            target_actor,
                            Msg::Node(NodeMsg::RdmaReadArrive {
                                initiator,
                                region,
                                req_id,
                                posted: (now, seq),
                            }),
                        ),
                        None => {
                            // The retry was lost: close the re-armed window.
                            if let Some(race) = &self.race {
                                race.borrow_mut()
                                    .on_read_drop(initiator, req_id, target, region);
                            }
                        }
                    }
                    return;
                }
                if verdict == ReadVerdict::Torn {
                    self.stats.torn_reads += 1;
                }
                // Serving this completion occupies the target NIC's QP
                // cache: charge contention (thrash latency or outright
                // shedding) before the fault model sees the leg.
                let Some(extra) = self.apply_contention(now, seq, target, initiator) else {
                    return;
                };
                // Target-NIC DMA read + reply flight + initiator CQ poll.
                let base =
                    self.cfg.nic_read + self.cfg.wire_latency + self.cfg.completion_poll + extra;
                let Some(delay) =
                    self.apply_faults(now, seq, None, Some(initiator), FaultOp::RdmaRead, base)
                else {
                    return;
                };
                // The snapshot the target NIC served is in flight now:
                // payload faults (skew, corruption) apply to the data
                // leg, keyed to the snapshot's *producer* (the target).
                if let RdmaResult::ReadOk {
                    data: fgmon_types::RegionData::Snapshot(snap),
                    ..
                } = &mut result
                {
                    self.apply_payload_faults(now, seq, target, snap);
                }
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaCompletion { req_id, result }),
                );
            }

            NetMsg::RdmaWriteAck {
                initiator,
                req_id,
                result,
                target,
            } => {
                let Some(dst_actor) = self.actor_of(initiator) else {
                    self.stats.dropped += 1;
                    return;
                };
                // Write and CAS acks occupy the serving NIC's QP cache
                // exactly like read completions do.
                let Some(extra) = self.apply_contention(now, seq, target, initiator) else {
                    return;
                };
                let base =
                    self.cfg.nic_read + self.cfg.wire_latency + self.cfg.completion_poll + extra;
                let Some(delay) =
                    self.apply_faults(now, seq, None, Some(initiator), FaultOp::RdmaWrite, base)
                else {
                    return;
                };
                ctx.send_in(
                    delay,
                    dst_actor,
                    Msg::Node(NodeMsg::RdmaCompletion { req_id, result }),
                );
            }

            NetMsg::McastSend {
                src,
                group,
                size,
                payload,
            } => {
                // One transmission = one posted op, however many ports
                // the switch replicates it to.
                if !self.admit_post(now, src) {
                    return;
                }
                // The membership list is taken out (not cloned) for the
                // duration of the fan-out and put back afterwards, so the
                // hot path never copies it.
                let members = self
                    .mcast
                    .get_mut(&group)
                    .map(std::mem::take)
                    .unwrap_or_default();
                let mut rank = 0u64;
                for &node in &members {
                    if node == src {
                        continue;
                    }
                    let Some(dst_actor) = self.actor_of(node) else {
                        self.stats.dropped += 1;
                        continue;
                    };
                    self.stats.mcast_frames += 1;
                    // The switch replicates in hardware; replicas leave with
                    // a tiny per-port stagger. Fault fates are drawn per
                    // member in membership order, keeping them deterministic.
                    let base = self.frame_latency(size)
                        + SimDuration(self.cfg.mcast_fanout.nanos() * rank);
                    rank += 1;
                    let Some(delay) =
                        self.apply_faults(now, seq, Some(src), Some(node), FaultOp::Mcast, base)
                    else {
                        continue;
                    };
                    ctx.send_in(
                        delay,
                        dst_actor,
                        Msg::Node(NodeMsg::McastDeliver {
                            group,
                            size,
                            // Refcount bump, not a deep copy: every replica
                            // shares the sender's immutable body.
                            payload: payload.clone(), // lint: payload-clone — Arc refcount bump
                        }),
                    );
                }
                if let Some(slot) = self.mcast.get_mut(&group) {
                    *slot = members;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conn_registry_roundtrip() {
        let mut f = Fabric::new(NetConfig::default(), vec![ActorId(1), ActorId(2)]);
        let c = f.add_conn(NodeId(0), ServiceSlot(0), NodeId(1), ServiceSlot(3));
        assert_eq!(c, ConnId(0));
        let e = f.conn(c).unwrap();
        assert_eq!(e.b, NodeId(1));
        assert_eq!(e.svc_b, ServiceSlot(3));
        assert!(f.conn(ConnId(7)).is_none());
        assert_eq!(f.conn_count(), 1);
    }

    #[test]
    fn frame_latency_scales_with_size() {
        let f = Fabric::new(NetConfig::default(), vec![]);
        let zero = f.frame_latency(0);
        let large = f.frame_latency(64 * 1024);
        assert!(large > zero);
        assert_eq!(zero, NetConfig::default().wire_latency);
        // 64 KiB at 1 µs/KiB = 64 µs of serialization.
        assert_eq!(large - zero, SimDuration::from_micros(64));
    }

    #[test]
    fn mcast_membership_dedupes() {
        let mut f = Fabric::new(NetConfig::default(), vec![ActorId(1)]);
        f.join_mcast(McastGroup(1), NodeId(0));
        f.join_mcast(McastGroup(1), NodeId(0));
        assert_eq!(f.mcast[&McastGroup(1)].len(), 1);
    }

    #[test]
    fn empty_plan_takes_fast_path() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        assert!(f.fault_plan().is_empty());
        let base = SimDuration(100);
        let d = f.apply_faults(
            SimTime(0),
            0,
            Some(NodeId(0)),
            Some(NodeId(1)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(d, Some(base));
        assert_eq!(f.stats.fault_checks, 0);
    }

    #[test]
    fn crash_window_blackholes_frames() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(FaultPlan::new(7).crash(NodeId(1), SimTime(0), SimTime(100)));
        let base = SimDuration(10);
        let during = f.apply_faults(
            SimTime(50),
            0,
            Some(NodeId(0)),
            Some(NodeId(1)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(during, None);
        let after = f.apply_faults(
            SimTime(150),
            1,
            Some(NodeId(0)),
            Some(NodeId(1)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(after, Some(base));
        // Frames *from* the crashed node vanish too.
        let from = f.apply_faults(
            SimTime(50),
            2,
            Some(NodeId(1)),
            Some(NodeId(2)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(from, None);
        assert_eq!(f.stats.fault_crash_dropped, 2);
        assert_eq!(f.stats.fault_checks, 3);
    }

    #[test]
    fn loss_fates_replay_per_seed() {
        let run = |seed: u64| {
            let mut f = Fabric::new(NetConfig::default(), vec![]);
            f.set_fault_plan(FaultPlan::new(seed).lossy_all(0.5));
            let fates: Vec<bool> = (0..64)
                .map(|i| {
                    f.apply_faults(
                        SimTime(i),
                        i,
                        Some(NodeId(0)),
                        Some(NodeId(1)),
                        FaultOp::Socket,
                        SimDuration(10),
                    )
                    .is_some()
                })
                .collect();
            (fates, f.stats.fault_dropped)
        };
        let (fates_a, dropped_a) = run(11);
        let (fates_b, dropped_b) = run(11);
        assert_eq!(fates_a, fates_b);
        assert_eq!(dropped_a, dropped_b);
        assert!(dropped_a > 0 && dropped_a < 64, "p=0.5 should drop some");
        let (fates_c, _) = run(12);
        assert_ne!(fates_a, fates_c, "different seed should change fates");
    }

    #[test]
    fn fate_draws_are_pure_functions_of_the_event_key() {
        // The fate hash must not depend on evaluation order or fabric
        // history — that is what lets shard replicas agree with a
        // sequential fabric. Each argument must also actually matter.
        let u = fate_u(42, SimTime(1000), 7, 0);
        assert_eq!(u, fate_u(42, SimTime(1000), 7, 0));
        assert!((0.0..1.0).contains(&u));
        assert_ne!(u, fate_u(43, SimTime(1000), 7, 0), "seed ignored");
        assert_ne!(u, fate_u(42, SimTime(1001), 7, 0), "time ignored");
        assert_ne!(u, fate_u(42, SimTime(1000), 8, 0), "seq ignored");
        assert_ne!(u, fate_u(42, SimTime(1000), 7, 1), "check index ignored");
    }

    #[test]
    fn shard_replicas_decide_identical_fates() {
        let mut a = Fabric::new(NetConfig::default(), vec![]);
        a.set_fault_plan(FaultPlan::new(9).lossy_all(0.5));
        let mut replicas = a.split_for_shards(2);
        let keys: Vec<(u64, u64)> = (0..32).map(|i| (i * 10, i)).collect();
        let fate = |f: &mut Fabric, k: &(u64, u64)| {
            f.fault_check_index = 0; // what handle() does per event
            f.apply_faults(
                SimTime(k.0),
                k.1,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::Socket,
                SimDuration(10),
            )
            .is_some()
        };
        // Replica 0 sees the even events, replica 1 the odd ones (a
        // shard split); fates must match the sequential fabric's.
        for (i, k) in keys.iter().enumerate() {
            let seq_fate = fate(&mut a, k);
            let shard_fate = fate(&mut replicas[i % 2], k);
            assert_eq!(seq_fate, shard_fate, "event {i} fate diverged");
        }
        assert_eq!(
            replicas[0].stats.fault_checks + replicas[1].stats.fault_checks,
            a.stats.fault_checks
        );
        // Replicas share routing state but start with clean counters.
        assert_eq!(
            replicas[0].stats.fault_dropped + replicas[1].stats.fault_dropped,
            a.stats.fault_dropped
        );
    }

    #[test]
    fn absorb_stats_sums_every_counter() {
        let mut a = FabricStats::default();
        let mut b = FabricStats::default();
        a.rdma_reads = 3;
        a.rdma_batched_reads = 2;
        a.rdma_batch_posts = 1;
        b.rdma_reads = 4;
        b.socket_frames = 7;
        b.torn_reads = 1;
        let mut sum = FabricStats::default();
        sum.absorb(&a);
        sum.absorb(&b);
        assert_eq!(sum.rdma_reads, 7);
        assert_eq!(sum.rdma_batched_reads, 2);
        assert_eq!(sum.rdma_batch_posts, 1);
        assert_eq!(sum.socket_frames, 7);
        assert_eq!(sum.torn_reads, 1);
    }

    #[test]
    fn absorb_stats_sums_the_tenant_ledger() {
        let mut a = FabricStats::default();
        let mut b = FabricStats::default();
        a.tenants[1].posted = 10;
        a.tenants[1].thrashed = 3;
        b.tenants[1].posted = 5;
        b.tenants[2].rate_limited = 7;
        let mut sum = FabricStats::default();
        sum.absorb(&a);
        sum.absorb(&b);
        assert_eq!(sum.tenants[1].posted, 15);
        assert_eq!(sum.tenants[1].thrashed, 3);
        assert_eq!(sum.tenants[2].rate_limited, 7);
        assert_eq!(sum.tenants[0], TenantStats::default());
    }

    #[test]
    fn rate_limit_admits_at_most_the_bucket_per_window() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_node_tenant(NodeId(1), TenantId(1));
        f.set_tenancy(TenancyConfig::with_qos(QosPolicy::RateLimit {
            ops_per_window: 4,
            window: SimDuration::from_millis(1),
        }));
        let t0 = SimTime(0);
        let admitted = (0..10).filter(|_| f.admit_post(t0, NodeId(1))).count();
        assert_eq!(admitted, 4, "bucket must cap the aligned window");
        assert_eq!(f.stats.tenants[1].posted, 10);
        assert_eq!(f.stats.tenants[1].rate_limited, 6);
        // A fresh window refills the bucket.
        let t1 = SimTime(SimDuration::from_millis(1).nanos());
        assert!(f.admit_post(t1, NodeId(1)));
        // The priority (infrastructure) tenant is never limited.
        let infra = (0..10).filter(|_| f.admit_post(t0, NodeId(0))).count();
        assert_eq!(infra, 10);
        assert_eq!(f.stats.tenants[0].rate_limited, 0);
    }

    #[test]
    fn contention_thrashes_past_the_qp_cache_and_sheds_past_overload() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_node_tenant(NodeId(2), TenantId(1));
        let tc = TenancyConfig::default();
        f.set_tenancy(tc);
        let now = SimTime(10);
        // Up to qp_cache_slots completions in a window ride free.
        for seq in 0..tc.contention.qp_cache_slots as u64 {
            assert_eq!(
                f.apply_contention(now, seq, NodeId(0), NodeId(2)),
                Some(SimDuration::ZERO)
            );
        }
        assert_eq!(f.stats.tenants[1].thrashed, 0);
        // The next completion thrashes and pays the penalty.
        assert_eq!(
            f.apply_contention(now, 99, NodeId(0), NodeId(2)),
            Some(tc.contention.thrash_penalty)
        );
        assert_eq!(f.stats.tenants[1].thrashed, 1);
        // Far past the overload threshold, some completions are shed.
        for seq in 100..600 {
            f.apply_contention(now, seq, NodeId(0), NodeId(2));
        }
        let t = &f.stats.tenants[1];
        assert!(t.contention_dropped > 0, "overload must shed");
        assert!(
            t.thrashed > t.contention_dropped,
            "shedding is probabilistic"
        );
        assert_eq!(t.completions, tc.contention.qp_cache_slots as u64 + 1 + 500);
        // A fresh window clears the pressure.
        let later = SimTime(now.nanos() + tc.contention.window.nanos());
        assert_eq!(
            f.apply_contention(later, 999, NodeId(0), NodeId(2)),
            Some(SimDuration::ZERO)
        );
    }

    #[test]
    fn priority_qp_class_exempts_the_monitoring_tenant() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_node_tenant(NodeId(2), TenantId(1));
        f.set_tenancy(TenancyConfig::with_qos(QosPolicy::PriorityQp));
        let now = SimTime(10);
        // The hostile tenant fills the QP cache well past thrash.
        for seq in 0..200 {
            f.apply_contention(now, seq, NodeId(0), NodeId(2));
        }
        assert!(f.stats.tenants[1].thrashed > 0);
        // The infrastructure tenant's completion shares the cache but
        // never pays, even with the window saturated.
        assert_eq!(
            f.apply_contention(now, 777, NodeId(0), NodeId(1)),
            Some(SimDuration::ZERO)
        );
        assert_eq!(f.stats.tenants[0].thrashed, 0);
        assert_eq!(f.stats.tenants[0].contention_dropped, 0);
    }

    #[test]
    fn shard_replicas_carry_the_tenancy_model() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_node_tenant(NodeId(1), TenantId(1));
        f.set_tenancy(TenancyConfig::with_qos(QosPolicy::RateLimit {
            ops_per_window: 2,
            window: SimDuration::from_millis(1),
        }));
        let mut replicas = f.split_for_shards(2);
        // Each replica enforces the same per-source bucket (a source is
        // only ever posted from its own shard, so slots never merge).
        for r in &mut replicas {
            let admitted = (0..5)
                .filter(|_| r.admit_post(SimTime(0), NodeId(1)))
                .count();
            assert_eq!(admitted, 2);
        }
        // Absorbing replica stats sums the per-tenant ledger.
        let mut total = FabricStats::default();
        for r in &replicas {
            total.absorb(&r.stats);
        }
        assert_eq!(total.tenants[1].posted, 10);
        assert_eq!(total.tenants[1].rate_limited, 6);
    }

    #[test]
    fn reset_stats_clears_every_counter() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(FaultPlan::new(3).lossy_all(0.5));
        for i in 0..32 {
            f.apply_faults(
                SimTime(i),
                i,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::Socket,
                SimDuration(10),
            );
        }
        f.stats.socket_frames += 4;
        f.stats.rdma_reads += 2;
        f.stats.torn_reads += 1;
        assert_ne!(f.stats, FabricStats::default());
        f.reset_stats();
        assert_eq!(f.stats, FabricStats::default());
        // The fault plan survives a stats reset: only the counters are
        // scenario-scoped.
        assert!(!f.fault_plan().is_empty());
    }

    #[test]
    fn congestion_and_stall_inflate_latency() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(
            FaultPlan::new(0)
                .congested(SimTime(0), SimTime(100), 4.0)
                .nic_stall(NodeId(1), SimTime(0), SimTime(100), SimDuration(7)),
        );
        let base = SimDuration(10);
        let d = f
            .apply_faults(
                SimTime(10),
                0,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::RdmaRead,
                base,
            )
            .unwrap();
        assert_eq!(d, SimDuration(47));
        let d = f
            .apply_faults(
                SimTime(200),
                1,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::RdmaRead,
                base,
            )
            .unwrap();
        assert_eq!(d, base);
        assert_eq!(f.stats.fault_delayed, 1);
    }

    #[test]
    fn partition_drops_one_direction_only() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(FaultPlan::new(0).partition(
            Some(NodeId(0)),
            Some(NodeId(1)),
            SimTime(0),
            SimTime(100),
        ));
        let base = SimDuration(10);
        let fwd = f.apply_faults(
            SimTime(50),
            0,
            Some(NodeId(0)),
            Some(NodeId(1)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(fwd, None);
        let rev = f.apply_faults(
            SimTime(50),
            1,
            Some(NodeId(1)),
            Some(NodeId(0)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(rev, Some(base));
        // After the window the direction heals.
        let healed = f.apply_faults(
            SimTime(150),
            2,
            Some(NodeId(0)),
            Some(NodeId(1)),
            FaultOp::Socket,
            base,
        );
        assert_eq!(healed, Some(base));
        assert_eq!(f.stats.fault_partitioned, 1);
        assert_eq!(f.stats.fault_dropped, 0);
    }

    #[test]
    fn slow_nic_inflates_frames_touching_the_node() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(FaultPlan::new(0).slow_nic(NodeId(1), 5.0, SimTime(0), SimTime(100)));
        let base = SimDuration(10);
        let touching = f
            .apply_faults(
                SimTime(50),
                0,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::RdmaRead,
                base,
            )
            .unwrap();
        assert_eq!(touching, SimDuration(50));
        // No loss, no errors: the frame still arrives — gray, not black.
        let elsewhere = f
            .apply_faults(
                SimTime(50),
                1,
                Some(NodeId(0)),
                Some(NodeId(2)),
                FaultOp::RdmaRead,
                base,
            )
            .unwrap();
        assert_eq!(elsewhere, base);
        // Completion legs carry only the initiator; a slow initiator NIC
        // still applies via the known endpoint.
        let completion = f
            .apply_faults(
                SimTime(50),
                2,
                None,
                Some(NodeId(1)),
                FaultOp::RdmaRead,
                base,
            )
            .unwrap();
        assert_eq!(completion, SimDuration(50));
    }

    #[test]
    fn reorder_holds_frames_back() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(FaultPlan::new(7).reordered(
            Some(FaultOp::Socket),
            1.0,
            SimDuration(500),
            SimTime(0),
            SimTime(100),
        ));
        let base = SimDuration(10);
        let held = f
            .apply_faults(
                SimTime(50),
                0,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::Socket,
                base,
            )
            .unwrap();
        assert_eq!(held, SimDuration(510));
        // Non-matching op takes no reorder draw and flies on time.
        let checks_before = f.fault_check_index;
        let rdma = f
            .apply_faults(
                SimTime(50),
                1,
                Some(NodeId(0)),
                Some(NodeId(1)),
                FaultOp::RdmaRead,
                base,
            )
            .unwrap();
        assert_eq!(rdma, base);
        assert_eq!(f.fault_check_index, checks_before + 1, "no extra draw");
        assert_eq!(f.stats.fault_reordered, 1);
    }

    #[test]
    fn payload_faults_skew_reseals_and_corruption_breaks_the_seal() {
        use fgmon_types::LoadSnapshot;
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(
            FaultPlan::new(3)
                .clock_skew(NodeId(1), -2_000_000, SimTime(0), SimTime(100))
                .corrupting(Some(NodeId(2)), 1.0, SimTime(0), SimTime(100)),
        );
        let mut snap = LoadSnapshot {
            measured_at: SimTime(5_000_000),
            ..LoadSnapshot::zero()
        }
        .sealed();
        // Skew shifts the reported timestamp and re-seals: the fault is
        // the producer's clock, not the wire.
        f.apply_payload_faults(SimTime(50), 0, NodeId(1), &mut snap);
        assert_eq!(snap.measured_at, SimTime(3_000_000));
        assert!(snap.checksum_ok());
        assert_eq!(f.stats.fault_skewed, 1);
        assert_eq!(f.stats.fault_corrupted, 0);
        // Corruption perturbs content and leaves the seal stale.
        let mut snap2 = LoadSnapshot::zero().sealed();
        f.apply_payload_faults(SimTime(50), 1, NodeId(2), &mut snap2);
        assert!(!snap2.checksum_ok());
        assert_eq!(f.stats.fault_corrupted, 1);
        // Negative skew saturates at time zero.
        let mut snap3 = LoadSnapshot {
            measured_at: SimTime(1_000_000),
            ..LoadSnapshot::zero()
        }
        .sealed();
        f.apply_payload_faults(SimTime(50), 2, NodeId(1), &mut snap3);
        assert_eq!(snap3.measured_at, SimTime::ZERO);
        assert!(snap3.checksum_ok());
    }

    #[test]
    fn duplicate_fate_fires_only_in_window() {
        let mut f = Fabric::new(NetConfig::default(), vec![]);
        f.set_fault_plan(FaultPlan::new(5).duplicated(
            1.0,
            SimDuration(250),
            SimTime(0),
            SimTime(100),
        ));
        assert_eq!(f.duplicate_fate(SimTime(50), 0), Some(SimDuration(250)));
        assert_eq!(f.duplicate_fate(SimTime(100), 1), None);
        assert_eq!(f.stats.fault_duplicated, 1);
        // An empty plan takes the fast path and draws nothing.
        let mut quiet = Fabric::new(NetConfig::default(), vec![]);
        assert_eq!(quiet.duplicate_fate(SimTime(50), 0), None);
        assert_eq!(quiet.fault_check_index, 0);
    }
}
