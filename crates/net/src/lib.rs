//! # fgmon-net — simulated InfiniBand-like cluster fabric
//!
//! A non-blocking switch ([`Fabric`]) connecting every node's HCA, with
//! both channel semantics (sockets over IPoIB — remote CPU involved) and
//! memory semantics (one-sided RDMA — target NIC only), plus hardware
//! multicast. Timing comes from [`fgmon_types::NetConfig`], calibrated to
//! the paper's Mellanox InfiniHost 4x testbed.

pub mod fabric;

pub use fabric::{ConnEntry, Fabric, FabricStats};
