//! End-to-end fabric tests: routing, timing, multicast fan-out, and
//! bandwidth accounting through a real engine with real node actors.

use fgmon_net::Fabric;
use fgmon_os::{NodeActor, OsApi, OsCore, Service};
use fgmon_sim::{ActorId, DetRng, Engine, SimDuration, SimTime};
use fgmon_types::{
    ConnId, McastGroup, Msg, NetConfig, NodeId, NodeMsg, OsConfig, Payload, ServiceSlot,
    SharedPayload,
};

/// Records every packet/mcast arrival with its timestamp.
#[derive(Default)]
struct Sniffer {
    listen_conns: Vec<ConnId>,
    groups: Vec<McastGroup>,
    packets: Vec<(SimTime, ConnId, u64)>,
    mcasts: Vec<(SimTime, McastGroup)>,
}

impl Service for Sniffer {
    fn name(&self) -> &'static str {
        "sniffer"
    }
    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        for &c in &self.listen_conns {
            os.listen_direct(c);
        }
        for &g in &self.groups {
            os.subscribe_mcast(g);
        }
    }
    fn on_packet(
        &mut self,
        _tid: Option<fgmon_types::ThreadId>,
        conn: ConnId,
        _size: u32,
        payload: Payload,
        os: &mut OsApi<'_, '_>,
    ) {
        let tag = match payload {
            Payload::Opaque { tag } => tag,
            _ => u64::MAX,
        };
        self.packets.push((os.now(), conn, tag));
    }
    fn on_mcast(&mut self, group: McastGroup, _payload: SharedPayload, os: &mut OsApi<'_, '_>) {
        self.mcasts.push((os.now(), group));
    }
}

/// Sends one frame per timer tick (direct, no CPU).
struct Blaster {
    conn: Option<ConnId>,
    group: Option<McastGroup>,
    count: u64,
    sent: u64,
}

impl Service for Blaster {
    fn name(&self) -> &'static str {
        "blaster"
    }
    fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
        os.set_timer(SimDuration::from_micros(100), 1);
    }
    fn on_timer(&mut self, _token: u64, os: &mut OsApi<'_, '_>) {
        if self.sent >= self.count {
            return;
        }
        self.sent += 1;
        if let Some(conn) = self.conn {
            os.send_direct(conn, Payload::Opaque { tag: self.sent });
        }
        if let Some(group) = self.group {
            os.mcast_direct(group, Payload::Opaque { tag: self.sent });
        }
        os.set_timer(SimDuration::from_micros(100), 1);
    }
}

struct World {
    eng: Engine<Msg>,
    fabric: ActorId,
    nodes: Vec<ActorId>,
}

fn world(n_nodes: usize, wire: impl FnOnce(&mut Fabric)) -> World {
    let mut eng: Engine<Msg> = Engine::new();
    let fabric_id = eng.reserve_actor();
    let nodes: Vec<ActorId> = (0..n_nodes).map(|_| eng.reserve_actor()).collect();
    let mut fabric = Fabric::new(NetConfig::default(), nodes.clone());
    wire(&mut fabric);
    eng.install(fabric_id, Box::new(fabric));
    for (i, &actor) in nodes.iter().enumerate() {
        eng.install(
            actor,
            Box::new(NodeActor::new(OsCore::new(
                NodeId(i as u16),
                OsConfig::frontend(),
                fabric_id,
                actor,
                DetRng::new(i as u64 + 1),
            ))),
        );
    }
    World {
        eng,
        fabric: fabric_id,
        nodes,
    }
}

fn boot(w: &mut World) {
    for &n in &w.nodes {
        w.eng.schedule(SimTime::ZERO, n, Msg::Node(NodeMsg::Boot));
    }
}

#[test]
fn socket_frames_arrive_in_order_with_wire_latency() {
    let mut conn = ConnId(0);
    let mut w = world(2, |f| {
        conn = f.add_conn(NodeId(0), ServiceSlot(0), NodeId(1), ServiceSlot(0));
    });
    w.eng
        .actor_mut::<NodeActor>(w.nodes[0])
        .unwrap()
        .add_service(Box::new(Blaster {
            conn: Some(conn),
            group: None,
            count: 50,
            sent: 0,
        }));
    w.eng
        .actor_mut::<NodeActor>(w.nodes[1])
        .unwrap()
        .add_service(Box::new(Sniffer {
            listen_conns: vec![conn],
            ..Default::default()
        }));
    boot(&mut w);
    w.eng.run_until(SimTime(SimDuration::from_secs(1).nanos()));

    let rx = w.eng.actor::<NodeActor>(w.nodes[1]).unwrap();
    let sniffer = rx.service::<Sniffer>(ServiceSlot(0)).unwrap();
    assert_eq!(sniffer.packets.len(), 50);
    // FIFO: tags strictly increasing.
    let tags: Vec<u64> = sniffer.packets.iter().map(|p| p.2).collect();
    assert!(
        tags.windows(2).all(|w| w[0] < w[1]),
        "out of order: {tags:?}"
    );
    // First frame sent at t=100µs: arrival = send + wire (4µs) + irq
    // service (hw 4µs + softirq 22µs). All in under a millisecond.
    let first = sniffer.packets[0].0;
    assert!(first >= SimTime(104_000), "too early: {first:?}");
    assert!(first < SimTime(250_000), "too late: {first:?}");

    let fabric = w.eng.actor::<Fabric>(w.fabric).unwrap();
    assert_eq!(fabric.stats.socket_frames, 50);
    assert!(fabric.stats.socket_bytes > 0);
    assert_eq!(fabric.stats.dropped, 0);
}

#[test]
fn unknown_conn_is_dropped_and_counted() {
    let mut w = world(2, |_| {});
    w.eng
        .actor_mut::<NodeActor>(w.nodes[0])
        .unwrap()
        .add_service(Box::new(Blaster {
            conn: Some(ConnId(99)),
            group: None,
            count: 3,
            sent: 0,
        }));
    boot(&mut w);
    w.eng
        .run_until(SimTime(SimDuration::from_millis(10).nanos()));
    let fabric = w.eng.actor::<Fabric>(w.fabric).unwrap();
    assert_eq!(fabric.stats.dropped, 3);
    assert_eq!(fabric.stats.socket_frames, 0);
}

#[test]
fn multicast_reaches_all_subscribers_except_sender() {
    let group = McastGroup(9);
    let mut w = world(4, |f| {
        for n in 0..4 {
            f.join_mcast(group, NodeId(n));
        }
    });
    w.eng
        .actor_mut::<NodeActor>(w.nodes[0])
        .unwrap()
        .add_service(Box::new(Blaster {
            conn: None,
            group: Some(group),
            count: 10,
            sent: 0,
        }));
    // Sender also subscribes (must NOT hear itself).
    w.eng
        .actor_mut::<NodeActor>(w.nodes[0])
        .unwrap()
        .add_service(Box::new(Sniffer {
            groups: vec![group],
            ..Default::default()
        }));
    for &n in &w.nodes[1..] {
        w.eng
            .actor_mut::<NodeActor>(n)
            .unwrap()
            .add_service(Box::new(Sniffer {
                groups: vec![group],
                ..Default::default()
            }));
    }
    boot(&mut w);
    w.eng.run_until(SimTime(SimDuration::from_secs(1).nanos()));

    for (i, &n) in w.nodes.iter().enumerate() {
        let node = w.eng.actor::<NodeActor>(n).unwrap();
        // The sender hosts the sniffer at slot 1, receivers at slot 0.
        let slot = if i == 0 {
            ServiceSlot(1)
        } else {
            ServiceSlot(0)
        };
        let sniffer = node.service::<Sniffer>(slot).unwrap();
        if i == 0 {
            assert_eq!(sniffer.mcasts.len(), 0, "sender heard itself");
        } else {
            assert_eq!(sniffer.mcasts.len(), 10, "node {i}");
        }
    }
    let fabric = w.eng.actor::<Fabric>(w.fabric).unwrap();
    assert_eq!(fabric.stats.mcast_frames, 30); // 10 sends × 3 receivers
}

#[test]
fn large_frames_pay_serialization_latency() {
    struct BigSender {
        conn: ConnId,
    }
    impl Service for BigSender {
        fn name(&self) -> &'static str {
            "big"
        }
        fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
            // 256 KiB response vs a 256-byte one.
            os.send_direct(
                self.conn,
                Payload::HttpResponse {
                    req_id: 1,
                    bytes: 256 * 1024,
                },
            );
            os.send_direct(self.conn, Payload::Opaque { tag: 2 });
        }
    }
    let mut conn = ConnId(0);
    let mut w = world(2, |f| {
        conn = f.add_conn(NodeId(0), ServiceSlot(0), NodeId(1), ServiceSlot(0));
    });
    w.eng
        .actor_mut::<NodeActor>(w.nodes[0])
        .unwrap()
        .add_service(Box::new(BigSender { conn }));
    w.eng
        .actor_mut::<NodeActor>(w.nodes[1])
        .unwrap()
        .add_service(Box::new(Sniffer {
            listen_conns: vec![conn],
            ..Default::default()
        }));
    boot(&mut w);
    w.eng.run_until(SimTime(SimDuration::from_secs(1).nanos()));
    let rx = w.eng.actor::<NodeActor>(w.nodes[1]).unwrap();
    let sniffer = rx.service::<Sniffer>(ServiceSlot(0)).unwrap();
    assert_eq!(sniffer.packets.len(), 2);
    // The small frame, sent second, overtakes nothing at the IRQ level but
    // the big frame's arrival is dominated by ~256µs of serialization.
    let big_arrival = sniffer.packets.iter().find(|p| p.2 == u64::MAX).unwrap().0;
    assert!(
        big_arrival >= SimTime(250_000),
        "big frame too fast: {big_arrival:?}"
    );
}

#[test]
fn rdma_read_roundtrip_matches_config_rtt() {
    struct Reader {
        done_at: Option<SimTime>,
    }
    impl Service for Reader {
        fn name(&self) -> &'static str {
            "reader"
        }
        fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
            os.rdma_read(NodeId(1), fgmon_types::RegionId(0), 1);
        }
        fn on_rdma_complete(
            &mut self,
            _token: u64,
            _result: fgmon_types::RdmaResult,
            os: &mut OsApi<'_, '_>,
        ) {
            self.done_at = Some(os.now());
        }
    }
    struct Exporter;
    impl Service for Exporter {
        fn name(&self) -> &'static str {
            "exporter"
        }
        fn on_start(&mut self, os: &mut OsApi<'_, '_>) {
            os.register_kernel_region(false);
        }
    }
    let mut w = world(2, |_| {});
    w.eng
        .actor_mut::<NodeActor>(w.nodes[0])
        .unwrap()
        .add_service(Box::new(Reader { done_at: None }));
    w.eng
        .actor_mut::<NodeActor>(w.nodes[1])
        .unwrap()
        .add_service(Box::new(Exporter));
    boot(&mut w);
    w.eng
        .run_until(SimTime(SimDuration::from_millis(5).nanos()));
    let reader = w.eng.actor::<NodeActor>(w.nodes[0]).unwrap();
    let svc = reader.service::<Reader>(ServiceSlot(0)).unwrap();
    let done = svc.done_at.expect("read completed");
    let expected = NetConfig::default().rdma_read_rtt();
    assert_eq!(
        done,
        SimTime::ZERO + expected,
        "rtt should be exactly {expected}"
    );
    let fabric = w.eng.actor::<Fabric>(w.fabric).unwrap();
    assert_eq!(fabric.stats.rdma_reads, 1);
}
