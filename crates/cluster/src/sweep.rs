//! Multi-threaded parameter sweeps.
//!
//! Each parameter point runs a fully independent engine, so sweeps
//! parallelize perfectly: one OS thread per point (bounded by the machine
//! width), no shared state, deterministic per-point seeds. Results return
//! in input order regardless of completion order.

/// Run `f` over every item of `points` in parallel and return the results
/// in input order. `f` must be deterministic given its input.
pub fn sweep_parallel<P, R, F>(points: Vec<P>, f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    // lint: thread-spawn — sweeps sit *outside* the simulation: every
    // point builds, runs, and drops its own engine entirely inside one
    // worker closure, so no simulated state ever crosses threads and the
    // per-point results are identical to a serial run.
    let width = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(points.len().max(1));
    let results: Vec<std::sync::Mutex<Option<R>>> =
        points.iter().map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);

    // lint: thread-spawn — see above: engine-per-thread, results joined
    // in input order before this function returns.
    std::thread::scope(|scope| {
        for _ in 0..width {
            // lint: thread-spawn — sweep worker; each claimed point runs
            // its own isolated engine, so cross-thread order is irrelevant.
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= points.len() {
                    break;
                }
                let r = f(&points[i]);
                *results[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });

    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_covers_all() {
        let points: Vec<u64> = (0..64).collect();
        let out = sweep_parallel(points.clone(), |&p| p * 2);
        assert_eq!(out, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_point() {
        let out = sweep_parallel(vec![7u32], |&p| p + 1);
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn empty_sweep() {
        let out: Vec<u32> = sweep_parallel(Vec::<u32>::new(), |_| 0);
        assert!(out.is_empty());
    }
}
