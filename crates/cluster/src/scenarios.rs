//! Experiment worlds: pre-wired clusters for every experiment in the
//! paper's §5. Each constructor assembles the exact topology the paper
//! describes; the bench harnesses sweep their parameters.

use fgmon_balancer::{Dispatcher, DispatcherConfig, Policy, ReconfigPolicy, Reconfigurator};
use fgmon_core::backend::{RdmaAsyncBackend, RdmaSyncBackend, SocketBackend};
use fgmon_core::{make_backend, BackendConfig, BackendHandle, MonitorFrontendService};
use fgmon_ganglia::{GmetricPublisher, Gmond};
use fgmon_sim::{DetRng, SimDuration, SimTime};
use fgmon_types::{
    BreakerConfig, FaultOp, FaultPlan, McastGroup, NetConfig, NodeId, OsConfig, QosPolicy,
    RaceMode, RegionId, RetryPolicy, Scheme, ServiceSlot, TenancyConfig, TenantId,
};
use fgmon_workload::{
    CommLoad, CommSink, ComputeHogs, FloatApp, LoadRamp, LockClient, LockHost, RampStep, RdmaFlood,
    RubisClient, WorkerPoolServer, ZipfCatalog, ZipfClient,
};

use crate::builder::{Cluster, ClusterBuilder};

/// Ground-truth probe period used by the accuracy experiments.
pub const GT_PERIOD: SimDuration = SimDuration(997_000); // ~1 ms, tick-unaligned

/// Wire one monitoring pair (front-end slot ↔ back-end) for `scheme`.
///
/// Adds the backend service as the *first* service of `backend` (so its
/// region, if any, is `RegionId(0)` — the builder convention the front-end
/// handle relies on) and returns the handle the front-end needs.
///
/// `fe_slot` is the front-end service slot that will embed the client.
fn wire_monitoring(
    b: &mut ClusterBuilder,
    scheme: Scheme,
    mut cfg: BackendConfig,
    frontend: NodeId,
    fe_slot: ServiceSlot,
    backend: NodeId,
    expected_region: u32,
) -> BackendHandle {
    if scheme == Scheme::RdmaWritePush {
        // The front-end monitor registers one writable buffer per backend
        // in wiring order; tell this backend which one is its target.
        // Callers pass the backend's ordinal via `expected_region`.
        cfg.push_target = Some((frontend, RegionId(expected_region)));
    }
    let svc = make_backend(scheme, cfg);
    let slot = b.add_service(backend, svc);
    let conn = b.connect(frontend, fe_slot, backend, slot);
    register_backend_conn(b, backend, slot, conn);
    if scheme == Scheme::McastPush {
        b.join_mcast(McastGroup(0), frontend);
        b.join_mcast(McastGroup(0), backend);
    }
    BackendHandle {
        node: backend,
        conn: Some(conn),
        region: Some(RegionId(expected_region)),
    }
}

/// Tell a just-wired backend service which connection the front-end talks
/// over. Socket backends answer requests on it; RDMA backends use it for
/// fallback replies and restart re-advertisements.
fn register_backend_conn(
    b: &mut ClusterBuilder,
    backend: NodeId,
    slot: ServiceSlot,
    conn: fgmon_types::ConnId,
) {
    if let Some(sb) = b.node_service_mut::<SocketBackend>(backend, slot) {
        sb.conns.push(conn);
    }
    if let Some(rb) = b.node_service_mut::<RdmaSyncBackend>(backend, slot) {
        rb.conns.push(conn);
    }
    if let Some(rb) = b.node_service_mut::<RdmaAsyncBackend>(backend, slot) {
        rb.conns.push(conn);
    }
}

// ---------------------------------------------------------------------------
// Fig. 3 — monitoring latency vs. background load
// ---------------------------------------------------------------------------

/// World for the latency micro-benchmark.
pub struct MicroWorld {
    pub cluster: Cluster,
    pub frontend: NodeId,
    pub backend: NodeId,
    /// Slot of the [`MonitorFrontendService`] on the front-end.
    pub fe_mon: ServiceSlot,
}

/// One front-end polling one back-end running `bg_threads` compute threads
/// plus communication chatter with a peer node (the paper's "background
/// computation and communication operations").
pub fn micro_latency(
    scheme: Scheme,
    bg_threads: u32,
    comm: bool,
    poll: SimDuration,
    backend_os: OsConfig,
    seed: u64,
) -> MicroWorld {
    let mut b = ClusterBuilder::new(seed, NetConfig::default());
    let frontend = b.add_node(OsConfig::frontend());
    let backend = b.add_node(backend_os);
    let peer = b.add_node(OsConfig::default());

    // Front-end monitor is slot 0 there; back-end monitor is slot 0 too.
    let handle = wire_monitoring(
        &mut b,
        scheme,
        BackendConfig {
            calc_interval: poll,
            via_kernel_module: false,
            mcast_group: McastGroup(0),
            push_target: None,
            fallback_reporter: false,
        },
        frontend,
        ServiceSlot(0),
        backend,
        0,
    );
    let fe_mon = b.add_service(
        frontend,
        Box::new(MonitorFrontendService::new(
            scheme,
            scheme.uses_irq_signal(),
            poll,
            vec![handle],
        )),
    );

    if bg_threads > 0 {
        b.add_service(backend, Box::new(ComputeHogs::new(bg_threads)));
    }
    if comm {
        // Chatter both directions: backend→peer and peer→backend.
        let tx_slot = ServiceSlot(if bg_threads > 0 { 2 } else { 1 });
        let peer_rx = ServiceSlot(0);
        let conn_out = b.connect(backend, tx_slot, peer, peer_rx);
        b.add_service(
            backend,
            Box::new(CommLoad::new(conn_out, SimDuration::from_micros(500))),
        );
        b.add_service(
            peer,
            Box::new(fgmon_workload::CommSink::new(conn_out, true)),
        );
    }
    let cluster = b.finish(&[]);
    MicroWorld {
        cluster,
        frontend,
        backend,
        fe_mon,
    }
}

// ---------------------------------------------------------------------------
// Fig. 4 — application impact vs. monitoring granularity
// ---------------------------------------------------------------------------

/// World for the granularity micro-benchmark: the float app computes on
/// the back-end while a scheme monitors at granularity `g`.
pub struct FloatWorld {
    pub cluster: Cluster,
    pub frontend: NodeId,
    pub backend: NodeId,
    pub app_slot: ServiceSlot,
}

pub fn float_granularity(scheme: Scheme, g: SimDuration, seed: u64) -> FloatWorld {
    let mut b = ClusterBuilder::new(seed, NetConfig::default());
    let frontend = b.add_node(OsConfig::frontend());
    let backend = b.add_node(OsConfig::default());
    let handle = wire_monitoring(
        &mut b,
        scheme,
        BackendConfig {
            calc_interval: g,
            via_kernel_module: false,
            mcast_group: McastGroup(0),
            push_target: None,
            fallback_reporter: false,
        },
        frontend,
        ServiceSlot(0),
        backend,
        0,
    );
    b.add_service(
        frontend,
        Box::new(MonitorFrontendService::new(
            scheme,
            scheme.uses_irq_signal(),
            g,
            vec![handle],
        )),
    );
    let app_slot = b.add_service(
        backend,
        Box::new(FloatApp::new(SimDuration::from_millis(10))),
    );
    let cluster = b.finish(&[]);
    FloatWorld {
        cluster,
        frontend,
        backend,
        app_slot,
    }
}

// ---------------------------------------------------------------------------
// Figs. 5 & 6 — accuracy and detailed system information
// ---------------------------------------------------------------------------

/// World where all four micro schemes watch the same back-end
/// simultaneously (the paper's Fig. 5 methodology) while the load ramps.
pub struct AccuracyWorld {
    pub cluster: Cluster,
    pub frontend: NodeId,
    pub backend: NodeId,
    /// Front-end monitor slots, in `Scheme::MICRO` order.
    pub fe_slots: Vec<ServiceSlot>,
}

/// `rubis_sessions`: request traffic served by a worker-pool server on
/// the back-end (the paper "fired client requests to be processed at the
/// back-end server"), making thread count and CPU load fluctuate at
/// request timescale. `irq_chatter`: heavy communication at the back-end
/// so pending interrupts become visible (Fig. 6). `via_kernel_module`:
/// exposes `irq_stat` to every scheme as in that experiment.
pub fn accuracy_world(
    poll: SimDuration,
    ramp: Vec<RampStep>,
    rubis_sessions: u32,
    irq_chatter: bool,
    via_kernel_module: bool,
    seed: u64,
) -> AccuracyWorld {
    let mut b = ClusterBuilder::new(seed, NetConfig::default());
    let frontend = b.add_node(OsConfig::frontend());
    let backend = b.add_node(OsConfig::default());
    let peer = b.add_node(OsConfig::frontend());

    // Back-end: the four scheme backends first (deterministic region ids:
    // RdmaAsync registers region 0, RdmaSync region 1).
    let cfg = BackendConfig {
        calc_interval: poll,
        via_kernel_module,
        mcast_group: McastGroup(0),
        push_target: None,
        fallback_reporter: false,
    };
    let mut handles = Vec::new();
    let mut region_counter = 0u32;
    for (i, &scheme) in Scheme::MICRO.iter().enumerate() {
        let expected_region = if scheme.is_one_sided() {
            let r = region_counter;
            region_counter += 1;
            r
        } else {
            u32::MAX // unused
        };
        let svc = make_backend(scheme, cfg);
        let slot = b.add_service(backend, svc);
        let conn = b.connect(frontend, ServiceSlot(i as u16), backend, slot);
        register_backend_conn(&mut b, backend, slot, conn);
        handles.push(BackendHandle {
            node: backend,
            conn: Some(conn),
            region: if expected_region == u32::MAX {
                None
            } else {
                Some(RegionId(expected_region))
            },
        });
    }

    // Front-end: one poller per scheme, with series recording on.
    let mut fe_slots = Vec::new();
    for (i, &scheme) in Scheme::MICRO.iter().enumerate() {
        let mut svc = MonitorFrontendService::new(
            scheme,
            via_kernel_module || scheme.uses_irq_signal(),
            poll,
            vec![handles[i]],
        );
        svc.client.record_series = true;
        // Stagger the concurrent pollers so their request traffic is not
        // phase-locked (independent processes would not align).
        svc.start_offset = SimDuration::from_micros(1_300 * i as u64);
        fe_slots.push(b.add_service(frontend, Box::new(svc)));
    }

    // Load: ramping compute threads (slot 4) and a request-driven web
    // server (slot 5) fed by a client on the peer node.
    b.add_service(backend, Box::new(LoadRamp::new(ramp)));
    let client_conn = b.connect(peer, ServiceSlot(0), backend, ServiceSlot(5));
    let mut server = WorkerPoolServer::new();
    server.conns.push(client_conn);
    b.add_service(backend, Box::new(server));
    b.add_service(
        peer,
        Box::new(RubisClient::new(
            client_conn,
            rubis_sessions,
            SimDuration::from_millis(100),
        )),
    );

    if irq_chatter {
        // Peer floods the back-end with frame trains (and gets echoes
        // back): heavy, bursty interrupt pressure on the monitored node —
        // the regime of the paper's Fig. 6, where the interrupt backlog
        // persists long enough that only in-place kernel reads see it.
        let conn = b.connect(peer, ServiceSlot(1), backend, ServiceSlot(6));
        b.add_service(
            peer,
            Box::new(CommLoad::bursty(conn, SimDuration::from_micros(800), 10)),
        );
        b.add_service(backend, Box::new(fgmon_workload::CommSink::new(conn, true)));
    }

    let cluster = b.finish(&[(backend, GT_PERIOD)]);
    AccuracyWorld {
        cluster,
        frontend,
        backend,
        fe_slots,
    }
}

// ---------------------------------------------------------------------------
// Table 1, Figs. 7 & 9 — the cluster-based server
// ---------------------------------------------------------------------------

/// Configuration of the application-level cluster.
#[derive(Clone, Debug)]
pub struct RubisWorldCfg {
    pub scheme: Scheme,
    pub backends: u16,
    pub rubis_sessions: u32,
    pub think_mean: SimDuration,
    /// Co-hosted Zipf service: `(alpha, sessions)`.
    pub zipf: Option<(f64, u32)>,
    /// Monitoring granularity (poll + calc interval).
    pub granularity: SimDuration,
    pub policy: Policy,
    pub admission_threshold: Option<f64>,
    /// Co-tenant compute threads per back-end (the paper's premise is a
    /// *shared* enterprise cluster; other applications occupy the nodes).
    pub background_hogs: u32,
    /// Partition the back-ends between the RUBiS and Zipf services
    /// (half/half initially) and manage the partition with this
    /// reconfiguration policy (paper §7 extension). Use an infinite
    /// hysteresis for a *static* partition baseline. `None` leaves the
    /// cluster unpartitioned (every node serves both services). Requires
    /// `zipf` when set.
    pub reconfig: Option<ReconfigPolicy>,
    /// Fault schedule installed on the fabric (empty = pristine network).
    pub faults: FaultPlan,
    /// Timeout/retry policy for the dispatcher's monitor.
    pub retry: RetryPolicy,
    /// Staleness threshold for routing (see [`DispatcherConfig`]).
    pub max_info_age: Option<SimDuration>,
    /// Circuit breaker for the monitor's primary channel (see
    /// [`DispatcherConfig::breaker`]).
    pub breaker: Option<BreakerConfig>,
    /// Give RDMA backends a standby fallback reporter so tripped channels
    /// can be polled over the socket path.
    pub fallback_reporter: bool,
    /// Multi-tenant fabric: install this NIC-contention + QoS model.
    /// `None` leaves the fabric tenancy-blind (the historical behavior).
    pub tenancy: Option<TenancyConfig>,
    /// Add a hostile co-tenant node (tenant 1) that floods every
    /// back-end NIC with this many one-sided reads per 125 µs tick and
    /// pours bursty socket chatter into each back-end. 0 = no hostile
    /// node (the node is not even added, so ids are unchanged).
    pub hostile_flood: u32,
    pub seed: u64,
}

impl Default for RubisWorldCfg {
    fn default() -> Self {
        RubisWorldCfg {
            scheme: Scheme::RdmaSync,
            backends: 8,
            rubis_sessions: 64,
            think_mean: SimDuration::from_millis(300),
            zipf: None,
            granularity: SimDuration::from_millis(50),
            policy: Policy::WeightedLeastLoad,
            admission_threshold: None,
            background_hogs: 0,
            reconfig: None,
            faults: FaultPlan::default(),
            retry: RetryPolicy::OFF,
            max_info_age: None,
            breaker: None,
            fallback_reporter: false,
            tenancy: None,
            hostile_flood: 0,
            seed: 42,
        }
    }
}

/// The assembled application-level world.
pub struct RubisWorld {
    pub cluster: Cluster,
    pub frontend: NodeId,
    pub client_node: NodeId,
    pub backends: Vec<NodeId>,
    pub dispatcher_slot: ServiceSlot,
    pub rubis_client_slot: ServiceSlot,
    pub zipf_client_slot: Option<ServiceSlot>,
}

pub fn rubis_world(cfg: &RubisWorldCfg) -> RubisWorld {
    let mut b = ClusterBuilder::new(cfg.seed, NetConfig::default());
    let frontend = b.add_node(OsConfig::frontend());
    let client_node = b.add_node(OsConfig::frontend());
    let backends: Vec<NodeId> = (0..cfg.backends)
        .map(|_| b.add_node(OsConfig::default()))
        .collect();

    let bcfg = BackendConfig {
        calc_interval: cfg.granularity,
        via_kernel_module: false,
        mcast_group: McastGroup(0),
        push_target: None,
        fallback_reporter: cfg.fallback_reporter,
    };

    // Back-ends: slot 0 = monitor backend (region 0 by construction),
    // slot 1 = web server.
    let mut monitor_handles = Vec::new();
    let mut work_conns = Vec::new();
    for (i, &be) in backends.iter().enumerate() {
        // For pull schemes the backend's own region is always its first
        // registration (0); for the write-push extension the ordinal
        // selects the front-end buffer it pushes into.
        let region_hint = if cfg.scheme == Scheme::RdmaWritePush {
            i as u32
        } else {
            0
        };
        let handle = wire_monitoring(
            &mut b,
            cfg.scheme,
            bcfg,
            frontend,
            ServiceSlot(0),
            be,
            region_hint,
        );
        monitor_handles.push(handle);
        let mut server = WorkerPoolServer::new();
        // Conn from dispatcher (fe slot 0) to the server (slot 1).
        let conn = b.connect(frontend, ServiceSlot(0), be, ServiceSlot(1));
        server.conns.push(conn);
        b.add_service(be, Box::new(server));
        work_conns.push((be, conn));
        if cfg.background_hogs > 0 {
            b.add_service(be, Box::new(ComputeHogs::new(cfg.background_hogs)));
        }
    }

    // Client connections to the dispatcher.
    let rubis_conn = b.connect(client_node, ServiceSlot(0), frontend, ServiceSlot(0));
    let zipf_conn = cfg
        .zipf
        .map(|_| b.connect(client_node, ServiceSlot(1), frontend, ServiceSlot(0)));

    // Front-end: the dispatcher embedding the monitoring client.
    let mut dcfg = DispatcherConfig::for_scheme(cfg.scheme, cfg.granularity);
    dcfg.policy = cfg.policy;
    dcfg.admission_threshold = cfg.admission_threshold;
    dcfg.retry = cfg.retry;
    dcfg.max_info_age = cfg.max_info_age;
    dcfg.breaker = cfg.breaker;
    let mut client_conns = vec![rubis_conn];
    if let Some(c) = zipf_conn {
        client_conns.push(c);
    }
    let mut dispatcher = Dispatcher::new(dcfg, work_conns, monitor_handles, client_conns);
    if let Some(policy) = cfg.reconfig {
        assert!(
            cfg.zipf.is_some(),
            "reconfiguration partitions nodes between RUBiS and Zipf; enable zipf"
        );
        dispatcher.reconfig = Some(Reconfigurator::new(
            cfg.backends as usize,
            cfg.backends as usize / 2,
            policy,
            dcfg.weights,
            dcfg.capacity,
        ));
    }
    let dispatcher_slot = b.add_service(frontend, Box::new(dispatcher));

    // Clients.
    let rubis_client_slot = b.add_service(
        client_node,
        Box::new(RubisClient::new(
            rubis_conn,
            cfg.rubis_sessions,
            cfg.think_mean,
        )),
    );
    let zipf_client_slot = cfg.zipf.map(|(alpha, sessions)| {
        // lint: rng-construction — catalog shuffling runs at build time,
        // before the engine starts; seeded straight from the world config.
        let mut rng = DetRng::new(cfg.seed ^ 0x21bf);
        let catalog = ZipfCatalog::new(1000, alpha, &mut rng);
        b.add_service(
            client_node,
            Box::new(ZipfClient::new(
                zipf_conn.expect("zipf conn"),
                sessions,
                cfg.think_mean,
                catalog,
            )),
        )
    });

    // Hostile co-tenant: one extra node (added last, so every id above
    // is unchanged) aiming a one-sided read flood at each back-end NIC
    // and bursty chatter at each back-end CPU. Region 0 is where pull
    // backends export their stats; for push/socket schemes the reads
    // come back denied, but the *completions* still occupy the victim
    // NIC either way.
    if cfg.hostile_flood > 0 {
        let hostile = b.add_node(OsConfig::frontend());
        b.set_node_tenant(hostile, TenantId(1));
        let targets: Vec<(NodeId, RegionId)> =
            backends.iter().map(|&be| (be, RegionId(0))).collect();
        b.add_service(
            hostile,
            Box::new(RdmaFlood::new(
                targets,
                cfg.hostile_flood,
                SimDuration::from_micros(125),
            )),
        );
        for (i, &be) in backends.iter().enumerate() {
            let sink_slot =
                b.add_service(be, Box::new(CommSink::new(fgmon_types::ConnId(0), true)));
            let conn = b.connect(hostile, ServiceSlot(1 + i as u16), be, sink_slot);
            b.node_service_mut::<CommSink>(be, sink_slot)
                .expect("comm sink")
                .conn = conn;
            b.add_service(
                hostile,
                Box::new(CommLoad::bursty(conn, SimDuration::from_micros(400), 8)),
            );
        }
    }
    if let Some(tenancy) = cfg.tenancy {
        b.set_tenancy(tenancy);
    }
    if !cfg.faults.is_empty() {
        b.set_fault_plan(cfg.faults.clone());
    }
    let cluster = b.finish(&[]);
    RubisWorld {
        cluster,
        frontend,
        client_node,
        backends,
        dispatcher_slot,
        rubis_client_slot,
        zipf_client_slot,
    }
}

// ---------------------------------------------------------------------------
// Fault-injection scenarios — the robustness harness
// ---------------------------------------------------------------------------

/// Two pollers (Socket-Sync and RDMA-Sync) watching the same back-end
/// through a faulty fabric: the adversarial counterpart of
/// [`accuracy_world`]. Staleness/latency histograms land in the shared
/// recorder under `mon/staleness/<label>` as usual.
pub struct FaultCompareWorld {
    pub cluster: Cluster,
    pub frontend: NodeId,
    pub backend: NodeId,
    /// Slot of the Socket-Sync poller on the front-end.
    pub fe_socket: ServiceSlot,
    /// Slot of the RDMA-Sync poller on the front-end.
    pub fe_rdma: ServiceSlot,
}

/// Build the comparison world with an arbitrary [`FaultPlan`]. The race
/// sanitizer follows `FGMON_RACE_CHECK` (the builder default).
pub fn fault_compare_world(
    plan: FaultPlan,
    retry: RetryPolicy,
    poll: SimDuration,
    seed: u64,
) -> FaultCompareWorld {
    fault_compare_world_raced(plan, retry, poll, seed, RaceMode::from_env())
}

/// [`fault_compare_world`] with an explicit sanitizer mode (tests pin the
/// mode instead of inheriting the environment).
pub fn fault_compare_world_raced(
    plan: FaultPlan,
    retry: RetryPolicy,
    poll: SimDuration,
    seed: u64,
    race: RaceMode,
) -> FaultCompareWorld {
    let mut b = ClusterBuilder::new(seed, NetConfig::default());
    b.set_race_mode(race);
    let frontend = b.add_node(OsConfig::frontend());
    let backend = b.add_node(OsConfig::default());
    let cfg = BackendConfig {
        calc_interval: poll,
        via_kernel_module: false,
        mcast_group: McastGroup(0),
        push_target: None,
        fallback_reporter: false,
    };
    // Back-end slot 0 = socket backend (registers no region), slot 1 =
    // RDMA backend — its exported region is therefore RegionId(0).
    let h_sock = wire_monitoring(
        &mut b,
        Scheme::SocketSync,
        cfg,
        frontend,
        ServiceSlot(0),
        backend,
        0,
    );
    let h_rdma = wire_monitoring(
        &mut b,
        Scheme::RdmaSync,
        cfg,
        frontend,
        ServiceSlot(1),
        backend,
        0,
    );
    let mut sock = MonitorFrontendService::new(Scheme::SocketSync, false, poll, vec![h_sock]);
    sock.client.set_retry_policy(retry);
    let fe_socket = b.add_service(frontend, Box::new(sock));
    let mut rdma = MonitorFrontendService::new(Scheme::RdmaSync, false, poll, vec![h_rdma]);
    rdma.client.set_retry_policy(retry);
    let fe_rdma = b.add_service(frontend, Box::new(rdma));
    // Light background compute so the monitored signal is not constant.
    b.add_service(backend, Box::new(ComputeHogs::new(2)));
    b.set_fault_plan(plan);
    let cluster = b.finish(&[]);
    FaultCompareWorld {
        cluster,
        frontend,
        backend,
        fe_socket,
        fe_rdma,
    }
}

/// Lossy-fabric sweep point: socket frames traverse the loaded kernel
/// network path and are dropped with probability `loss_p`, while
/// one-sided RDMA operations are NIC-offloaded with hardware delivery —
/// the paper's overload asymmetry (Figs. 3/8) made mechanical. Sweep
/// `loss_p` for the robustness curve.
pub fn lossy_fabric(loss_p: f64, poll: SimDuration, seed: u64) -> FaultCompareWorld {
    let plan = FaultPlan::new(seed ^ 0x1055).lossy_op(FaultOp::Socket, loss_p);
    let retry = RetryPolicy::aggressive(poll.mul_f64(3.0));
    fault_compare_world(plan, retry, poll, seed)
}

/// Gray-failure comparison world: nothing fail-stops, yet everything is
/// subtly wrong. The front-end→back-end direction partitions for a
/// window (requests vanish, replies would flow), the back-end's NIC
/// degrades to 3× latency over an overlapping window, and the back-end's
/// clock drifts so its *reported* timestamps lie. The plan mixes
/// deterministic physics (partition, slow NIC) with payload rewriting
/// (skew), which makes this the canonical world for the parallel
/// determinism suite: every shard must agree bit-for-bit on fates that
/// depend on draw-index discipline.
pub fn gray_failure_world(seed: u64, race: RaceMode) -> FaultCompareWorld {
    let poll = SimDuration::from_millis(5);
    let sec = |s: u64| SimTime(SimDuration::from_secs(s).nanos());
    let plan = FaultPlan::new(seed ^ 0x64AF)
        .partition(Some(NodeId(0)), Some(NodeId(1)), sec(1), sec(2))
        .slow_nic(NodeId(1), 3.0, SimTime(1_500_000_000), sec(3))
        .clock_skew(NodeId(1), -2_000_000, sec(2), sec(4));
    let retry = RetryPolicy::aggressive(poll.mul_f64(3.0));
    fault_compare_world_raced(plan, retry, poll, seed, race)
}

/// Congested-switch scenario: every frame's wire latency is multiplied by
/// `latency_mult` inside `[from, until)`, and socket frames additionally
/// suffer tail-drop loss (congested kernel queues drop; RDMA transports
/// recover in hardware).
pub fn congested_switch(
    latency_mult: f64,
    from: SimTime,
    until: SimTime,
    poll: SimDuration,
    seed: u64,
) -> FaultCompareWorld {
    let plan = FaultPlan::new(seed ^ 0xC046)
        .congested(from, until, latency_mult)
        .lossy_op(FaultOp::Socket, 0.25);
    let retry = RetryPolicy::aggressive(poll.mul_f64(3.0));
    fault_compare_world(plan, retry, poll, seed)
}

/// World engineered to make RDMA reads overlap host kernel writes: the
/// race-sanitizer's canonical reproducer.
pub struct TornReadWorld {
    pub cluster: Cluster,
    pub frontend: NodeId,
    pub backend: NodeId,
    /// Slot of the RDMA-Sync poller on the front-end.
    pub fe_mon: ServiceSlot,
}

/// One RDMA-Sync poller reading the back-end's kernel-load region while
/// bursty peer chatter wakes and blocks the back-end's sink thread — each
/// transition is a host write to the exported region. A persistent
/// congestion fault stretches the read's request leg from ~5 µs to
/// ~100 µs, so writes routinely land *inside* open read windows. Strict
/// mode reports them as [`fgmon_types::TornRead`]s; seqlock mode retries
/// them away at a modeled cost.
pub fn torn_read_world(race: RaceMode, seed: u64) -> TornReadWorld {
    let poll = SimDuration::from_millis(1);
    let mut b = ClusterBuilder::new(seed, NetConfig::default());
    b.set_race_mode(race);
    let frontend = b.add_node(OsConfig::frontend());
    let backend = b.add_node(OsConfig::default());
    let peer = b.add_node(OsConfig::default());

    // Back-end slot 0 = RDMA-Sync backend; its kernel region is
    // RegionId(0) by construction.
    let handle = wire_monitoring(
        &mut b,
        Scheme::RdmaSync,
        BackendConfig {
            calc_interval: poll,
            via_kernel_module: false,
            mcast_group: McastGroup(0),
            push_target: None,
            fallback_reporter: false,
        },
        frontend,
        ServiceSlot(0),
        backend,
        0,
    );
    let fe_mon = b.add_service(
        frontend,
        Box::new(MonitorFrontendService::new(
            Scheme::RdmaSync,
            false,
            poll,
            vec![handle],
        )),
    );

    // Bursty chatter peer→backend. The sink must *drain* between frames
    // so it keeps blocking and re-waking — each transition is a kernel
    // write to the exported run-queue state. (A saturated sink would stay
    // runnable forever and never touch it: no echo, no compute hogs.)
    let conn = b.connect(peer, ServiceSlot(0), backend, ServiceSlot(1));
    b.add_service(
        peer,
        Box::new(CommLoad::bursty(conn, SimDuration::from_micros(400), 4)),
    );
    b.add_service(
        backend,
        Box::new(fgmon_workload::CommSink::new(conn, false)),
    );

    // Persistent congestion: every frame's latency ×24, widening the
    // read window far past the write inter-arrival time.
    b.set_fault_plan(FaultPlan::new(seed ^ 0x7042).congested(SimTime::ZERO, SimTime::MAX, 24.0));

    let cluster = b.finish(&[]);
    TornReadWorld {
        cluster,
        frontend,
        backend,
        fe_mon,
    }
}

/// Crash-during-burst scenario, ready for assertions about exclusion and
/// re-admission.
pub struct CrashWorld {
    pub world: RubisWorld,
    /// The back-end that goes dark.
    pub victim: NodeId,
    pub crash_from: SimTime,
    pub crash_until: SimTime,
}

/// A RUBiS cluster under session load where one back-end goes dark for
/// `[from, until)` mid-run. The dispatcher runs with an aggressive retry
/// policy and a staleness threshold, so monitoring marks the victim
/// unreachable, routing excludes it, and recovery re-admits it.
pub fn crash_during_burst(scheme: Scheme, from: SimTime, until: SimTime, seed: u64) -> CrashWorld {
    // Node ids by construction order: 0 = front-end, 1 = client node,
    // back-ends from 2. Crash the first back-end.
    let victim = NodeId(2);
    let cfg = RubisWorldCfg {
        scheme,
        backends: 4,
        rubis_sessions: 48,
        granularity: SimDuration::from_millis(20),
        faults: FaultPlan::new(seed ^ 0xFA17).crash(victim, from, until),
        retry: RetryPolicy::aggressive(SimDuration::from_millis(60)),
        max_info_age: Some(SimDuration::from_millis(250)),
        seed,
        ..Default::default()
    };
    CrashWorld {
        world: rubis_world(&cfg),
        victim,
        crash_from: from,
        crash_until: until,
    }
}

// ---------------------------------------------------------------------------
// Self-healing channel scenarios
// ---------------------------------------------------------------------------

/// World where the RDMA transport itself degrades for a window: the
/// self-healing-channel counterpart of [`crash_during_burst`].
pub struct FailoverWorld {
    pub world: RubisWorld,
    /// Window during which RDMA read legs are dropped with high
    /// probability.
    pub flaky_from: SimTime,
    pub flaky_until: SimTime,
}

/// A RUBiS cluster whose fabric drops ~90% of RDMA read legs inside
/// `[1 s, 4 s)` — an NIC firmware bug that a reboot fixes — while socket
/// frames sail through. One-sided schemes trip their per-backend circuit
/// breakers, fall back to socket polling of the standby reporter, probe
/// the RDMA path on the breaker cool-down (probes fail inside the window,
/// the first one after it succeeds), and restore. Two-sided and push
/// schemes are untouched, which is exactly the availability contrast the
/// failover experiment measures.
pub fn flaky_rdma_failover(scheme: Scheme, seed: u64) -> FailoverWorld {
    let from = SimTime(SimDuration::from_secs(1).nanos());
    let until = SimTime(SimDuration::from_secs(4).nanos());
    let cfg = RubisWorldCfg {
        scheme,
        backends: 4,
        rubis_sessions: 48,
        granularity: SimDuration::from_millis(20),
        faults: FaultPlan::new(seed ^ 0xF1A2).lossy_op_window(FaultOp::RdmaRead, 0.9, from, until),
        retry: RetryPolicy::aggressive(SimDuration::from_millis(60)),
        max_info_age: Some(SimDuration::from_millis(250)),
        breaker: Some(BreakerConfig::default()),
        fallback_reporter: true,
        seed,
        ..Default::default()
    };
    FailoverWorld {
        world: rubis_world(&cfg),
        flaky_from: from,
        flaky_until: until,
    }
}

/// [`crash_during_burst`] with the full recovery stack switched on: the
/// victim back-end fail-stops for `[2 s, 5 s)`, restarts with a bumped
/// boot generation, re-registers its regions, and re-advertises them over
/// every monitoring connection. The client's fence gate rejects any
/// record still carrying the old generation, and the breaker + fallback
/// reporter keep the other back-ends' monitoring untouched. Assertions
/// about fresh-generation re-admission live in the failover integration
/// tests.
pub fn crash_restart_recovery(scheme: Scheme, seed: u64) -> CrashWorld {
    let victim = NodeId(2);
    let from = SimTime(SimDuration::from_secs(2).nanos());
    let until = SimTime(SimDuration::from_secs(5).nanos());
    let cfg = RubisWorldCfg {
        scheme,
        backends: 4,
        rubis_sessions: 48,
        granularity: SimDuration::from_millis(20),
        faults: FaultPlan::new(seed ^ 0xC4A5).crash(victim, from, until),
        retry: RetryPolicy::aggressive(SimDuration::from_millis(60)),
        max_info_age: Some(SimDuration::from_millis(250)),
        breaker: Some(BreakerConfig::default()),
        fallback_reporter: true,
        seed,
        ..Default::default()
    };
    CrashWorld {
        world: rubis_world(&cfg),
        victim,
        crash_from: from,
        crash_until: until,
    }
}

// ---------------------------------------------------------------------------
// Fig. 8 — RUBiS + Ganglia + gmetric
// ---------------------------------------------------------------------------

/// RUBiS world plus a Ganglia deployment with fine-grained gmetric
/// injections captured through `gmetric_scheme` at `gmetric_granularity`.
pub struct GangliaWorld {
    pub rubis: RubisWorld,
    pub publisher_slot: ServiceSlot,
}

pub fn ganglia_world(
    base: &RubisWorldCfg,
    gmetric_scheme: Scheme,
    gmetric_granularity: SimDuration,
) -> GangliaWorld {
    // Build the RUBiS world manually so we can attach Ganglia services
    // before boot.
    let mut b = ClusterBuilder::new(base.seed, NetConfig::default());
    let frontend = b.add_node(OsConfig::frontend());
    let client_node = b.add_node(OsConfig::frontend());
    let backends: Vec<NodeId> = (0..base.backends)
        .map(|_| b.add_node(OsConfig::default()))
        .collect();

    // Back-ends: slot 0 = dispatcher's monitor backend (e-RDMA-Sync per
    // the paper), slot 1 = web server, slot 2 = gmetric's scheme backend,
    // slot 3 = gmond.
    let dispatch_cfg = BackendConfig {
        calc_interval: base.granularity,
        via_kernel_module: false,
        mcast_group: McastGroup(0),
        push_target: None,
        fallback_reporter: false,
    };
    let gmetric_cfg = BackendConfig {
        calc_interval: gmetric_granularity,
        via_kernel_module: false,
        mcast_group: McastGroup(0),
        push_target: None,
        fallback_reporter: false,
    };

    let mut monitor_handles = Vec::new();
    let mut gmetric_handles = Vec::new();
    let mut work_conns = Vec::new();
    for &be in &backends {
        // Dispatcher monitoring (region 0 on each backend).
        let h = wire_monitoring(
            &mut b,
            base.scheme,
            dispatch_cfg,
            frontend,
            ServiceSlot(0),
            be,
            0,
        );
        monitor_handles.push(h);
        let mut server = WorkerPoolServer::new();
        let conn = b.connect(frontend, ServiceSlot(0), be, ServiceSlot(1));
        server.conns.push(conn);
        b.add_service(be, Box::new(server));
        work_conns.push((be, conn));

        // gmetric capture path: its RDMA region follows the dispatcher's
        // (one-sided dispatcher schemes register region 0 first).
        let expected_region = if gmetric_scheme.is_one_sided() {
            if base.scheme.is_one_sided() {
                1
            } else {
                0
            }
        } else {
            u32::MAX
        };
        let svc = make_backend(gmetric_scheme, gmetric_cfg);
        let slot = b.add_service(be, svc);
        let gconn = b.connect(frontend, ServiceSlot(1), be, slot);
        register_backend_conn(&mut b, be, slot, gconn);
        gmetric_handles.push(BackendHandle {
            node: be,
            conn: Some(gconn),
            region: if expected_region == u32::MAX {
                None
            } else {
                Some(RegionId(expected_region))
            },
        });

        // gmond daemon + ganglia channel membership.
        b.add_service(be, Box::new(Gmond::new(SimDuration::from_secs(1))));
        b.join_mcast(fgmon_ganglia::GANGLIA_GROUP, be);
    }
    b.join_mcast(fgmon_ganglia::GANGLIA_GROUP, frontend);

    let rubis_conn = b.connect(client_node, ServiceSlot(0), frontend, ServiceSlot(0));

    let mut dcfg = DispatcherConfig::for_scheme(base.scheme, base.granularity);
    dcfg.policy = base.policy;
    let dispatcher = Dispatcher::new(dcfg, work_conns, monitor_handles, vec![rubis_conn]);
    let dispatcher_slot = b.add_service(frontend, Box::new(dispatcher));

    // gmetric publisher on the front-end (slot 1).
    let publisher = GmetricPublisher::new(gmetric_scheme, gmetric_granularity, gmetric_handles);
    let publisher_slot = b.add_service(frontend, Box::new(publisher));

    let rubis_client_slot = b.add_service(
        client_node,
        Box::new(RubisClient::new(
            rubis_conn,
            base.rubis_sessions,
            base.think_mean,
        )),
    );

    let cluster = b.finish(&[]);
    GangliaWorld {
        rubis: RubisWorld {
            cluster,
            frontend,
            client_node,
            backends,
            dispatcher_slot,
            rubis_client_slot,
            zipf_client_slot: None,
        },
        publisher_slot,
    }
}

// ---------------------------------------------------------------------------
// Large-cluster scaling scenario — the parallel-executor workload
// ---------------------------------------------------------------------------

/// The assembled large-cluster world.
pub struct BigClusterWorld {
    pub cluster: Cluster,
    pub frontend: NodeId,
    pub client_node: NodeId,
    pub backends: Vec<NodeId>,
    pub dispatcher_slot: ServiceSlot,
    pub rubis_client_slot: ServiceSlot,
}

/// A cluster far past the paper's 8-node testbed (64–256 back-ends): one
/// dispatcher polling every back-end over RDMA-Sync at a tight
/// granularity, a closed-loop RUBiS client driving web traffic, and
/// east-west chatter on a ring (each back-end streams frames to its
/// successor) so event load spreads over *every* node rather than
/// concentrating on the front-end. This is the workload the sharded
/// executor is measured on: with round-robin node placement the ring
/// chatter makes nearly all traffic cross shards.
pub fn big_cluster(backend_count: u16, seed: u64) -> BigClusterWorld {
    let mut b = ClusterBuilder::new(seed, NetConfig::default());
    let frontend = b.add_node(OsConfig::frontend());
    let client_node = b.add_node(OsConfig::frontend());
    let backends: Vec<NodeId> = (0..backend_count)
        .map(|_| b.add_node(OsConfig::default()))
        .collect();

    let granularity = SimDuration::from_millis(10);
    let bcfg = BackendConfig {
        calc_interval: granularity,
        via_kernel_module: false,
        mcast_group: McastGroup(0),
        push_target: None,
        fallback_reporter: false,
    };

    // Back-ends: slot 0 = monitor backend, slot 1 = web server,
    // slot 2 = ring chatter source, slot 3 = ring chatter sink.
    let mut monitor_handles = Vec::new();
    let mut work_conns = Vec::new();
    for &be in &backends {
        let handle = wire_monitoring(
            &mut b,
            Scheme::RdmaSync,
            bcfg,
            frontend,
            ServiceSlot(0),
            be,
            0,
        );
        monitor_handles.push(handle);
        let mut server = WorkerPoolServer::new();
        let conn = b.connect(frontend, ServiceSlot(0), be, ServiceSlot(1));
        server.conns.push(conn);
        b.add_service(be, Box::new(server));
        work_conns.push((be, conn));
    }
    // East-west ring: back-end i streams to back-end i+1. Staggered
    // periods (all well above the wire latency) keep senders from
    // phase-locking into one synchronized burst per interval. Connections
    // are registered first so each node can then receive its source
    // (slot 2) and sink (slot 3) in a fixed order.
    let n = backends.len();
    let ring_conns: Vec<_> = (0..n)
        .map(|i| {
            b.connect(
                backends[i],
                ServiceSlot(2),
                backends[(i + 1) % n],
                ServiceSlot(3),
            )
        })
        .collect();
    for (i, &be) in backends.iter().enumerate() {
        let period = SimDuration::from_micros(150 + (i as u64 % 7) * 10);
        b.add_service(be, Box::new(CommLoad::new(ring_conns[i], period)));
        b.add_service(
            be,
            Box::new(fgmon_workload::CommSink::new(
                ring_conns[(i + n - 1) % n],
                false,
            )),
        );
    }

    let rubis_conn = b.connect(client_node, ServiceSlot(0), frontend, ServiceSlot(0));
    let dcfg = DispatcherConfig::for_scheme(Scheme::RdmaSync, granularity);
    let dispatcher = Dispatcher::new(dcfg, work_conns, monitor_handles, vec![rubis_conn]);
    let dispatcher_slot = b.add_service(frontend, Box::new(dispatcher));

    let rubis_client_slot = b.add_service(
        client_node,
        Box::new(RubisClient::new(
            rubis_conn,
            4 * backend_count as u32,
            SimDuration::from_millis(300),
        )),
    );

    let cluster = b.finish(&[]);
    BigClusterWorld {
        cluster,
        frontend,
        client_node,
        backends,
        dispatcher_slot,
        rubis_client_slot,
    }
}

// ---------------------------------------------------------------------------
// Multi-tenancy — NIC contention, hostile co-tenants, and the lock service
// ---------------------------------------------------------------------------

/// Two pollers (Socket-Sync and RDMA-Sync) watching one back-end whose
/// NIC and CPU a hostile co-tenant hammers: the multi-tenant
/// counterpart of [`fault_compare_world`], with the ground-truth probe
/// and per-scheme series recording on so accuracy is measurable.
pub struct NoisyWorld {
    pub cluster: Cluster,
    pub frontend: NodeId,
    pub backend: NodeId,
    pub hostile: NodeId,
    /// Slot of the Socket-Sync poller on the front-end.
    pub fe_socket: ServiceSlot,
    /// Slot of the RDMA-Sync poller on the front-end.
    pub fe_rdma: ServiceSlot,
    /// Slot of the hostile read flood on the hostile node.
    pub flood_slot: ServiceSlot,
}

/// [`noisy_neighbor`] with explicit QoS, hostile switch, and sanitizer
/// mode. The back-end runs an oscillating compute load so there is a
/// moving signal for the deviation metric; the hostile node (tenant 1)
/// aims a one-sided read flood at the back-end NIC — past the QP-cache
/// working set, so co-tenant completions thrash and shed — and pours
/// echoed socket chatter into the back-end CPU, the host-side half of
/// the attack that hits the two-sided scheme hardest.
pub fn noisy_neighbor_raced(
    qos: QosPolicy,
    hostile_on: bool,
    seed: u64,
    race: RaceMode,
) -> NoisyWorld {
    let poll = SimDuration::from_millis(1);
    let mut b = ClusterBuilder::new(seed, NetConfig::default());
    b.set_race_mode(race);
    let frontend = b.add_node(OsConfig::frontend());
    let backend = b.add_node(OsConfig::default());
    let hostile = b.add_node(OsConfig::frontend());
    b.set_node_tenant(hostile, TenantId(1));
    b.set_tenancy(TenancyConfig::with_qos(qos));

    let cfg = BackendConfig {
        calc_interval: poll,
        via_kernel_module: false,
        mcast_group: McastGroup(0),
        push_target: None,
        fallback_reporter: false,
    };
    // Back-end slot 0 = socket backend (no region), slot 1 = RDMA
    // backend — its exported region is RegionId(0), which is also what
    // the hostile flood reads.
    let h_sock = wire_monitoring(
        &mut b,
        Scheme::SocketSync,
        cfg,
        frontend,
        ServiceSlot(0),
        backend,
        0,
    );
    let h_rdma = wire_monitoring(
        &mut b,
        Scheme::RdmaSync,
        cfg,
        frontend,
        ServiceSlot(1),
        backend,
        0,
    );
    // Shed completions must be retried, not waited on forever.
    let retry = RetryPolicy::aggressive(poll.mul_f64(3.0));
    for (slot_scheme, handle) in [(Scheme::SocketSync, h_sock), (Scheme::RdmaSync, h_rdma)] {
        let mut svc = MonitorFrontendService::new(slot_scheme, false, poll, vec![handle]);
        svc.client.set_retry_policy(retry);
        svc.client.record_series = true;
        b.add_service(frontend, Box::new(svc));
    }
    let (fe_socket, fe_rdma) = (ServiceSlot(0), ServiceSlot(1));

    // The monitored signal: compute load oscillating 0 ↔ 8 threads every
    // 40 ms, so a scheme that samples late or loses samples deviates.
    let steps: Vec<RampStep> = (0..250)
        .map(|i| RampStep {
            at: SimTime(i as u64 * 40_000_000),
            hogs: if i % 2 == 0 { 0 } else { 8 },
        })
        .collect();
    b.add_service(backend, Box::new(LoadRamp::new(steps)));

    // The attack. ~96 reads/ms lands the victim NIC deep in the QP-cache
    // overload regime (default model: 32 clean slots, shedding past 96);
    // the chatter's echo sink keeps the back-end CPU and kernel network
    // path busy, which is what starves the *socket* scheme's reply path.
    let flood = RdmaFlood::new(
        vec![(backend, RegionId(0))],
        if hostile_on { 12 } else { 0 },
        SimDuration::from_micros(125),
    );
    let flood_slot = b.add_service(hostile, Box::new(flood));
    let sink_slot = b.add_service(
        backend,
        Box::new(CommSink::new(fgmon_types::ConnId(0), true)),
    );
    let conn = b.connect(hostile, ServiceSlot(1), backend, sink_slot);
    b.node_service_mut::<CommSink>(backend, sink_slot)
        .expect("comm sink")
        .conn = conn;
    if hostile_on {
        b.add_service(
            hostile,
            Box::new(CommLoad::bursty(conn, SimDuration::from_micros(200), 16)),
        );
    }

    let cluster = b.finish(&[(backend, GT_PERIOD)]);
    NoisyWorld {
        cluster,
        frontend,
        backend,
        hostile,
        fe_socket,
        fe_rdma,
        flood_slot,
    }
}

/// The adversarial baseline: hostile tenant on, no QoS.
pub fn noisy_neighbor(seed: u64) -> NoisyWorld {
    noisy_neighbor_raced(QosPolicy::None, true, seed, RaceMode::from_env())
}

/// The defended world: hostile tenant on, QoS isolating it.
pub fn noisy_neighbor_qos(qos: QosPolicy, seed: u64) -> NoisyWorld {
    noisy_neighbor_raced(qos, true, seed, RaceMode::from_env())
}

/// The quiet control: same world, hostile services disabled.
pub fn quiet_neighbor(seed: u64) -> NoisyWorld {
    noisy_neighbor_raced(QosPolicy::None, false, seed, RaceMode::from_env())
}

/// The per-window rate limit the defended worlds use: 24 posted ops per
/// millisecond keeps the hostile tenant under the QP-cache working set
/// (32 slots) with headroom for the monitoring ops on top.
pub const NOISY_RATE_LIMIT: QosPolicy = QosPolicy::RateLimit {
    ops_per_window: 24,
    window: SimDuration(1_000_000),
};

/// [`rubis_world`] under the same attack: the dispatcher-quality
/// counterpart of [`noisy_neighbor`]. Four back-ends, a hostile
/// co-tenant flooding all of them, and the chosen QoS policy.
pub fn noisy_rubis(scheme: Scheme, qos: QosPolicy, hostile_on: bool, seed: u64) -> RubisWorld {
    let cfg = RubisWorldCfg {
        scheme,
        backends: 2,
        rubis_sessions: 12,
        granularity: SimDuration::from_millis(20),
        retry: RetryPolicy::aggressive(SimDuration::from_millis(60)),
        max_info_age: Some(SimDuration::from_millis(250)),
        tenancy: Some(TenancyConfig::with_qos(qos)),
        hostile_flood: if hostile_on { 8 } else { 0 },
        seed,
        ..Default::default()
    };
    rubis_world(&cfg)
}

/// The RDMA-CAS distributed lock service under closed-loop contention,
/// ready for assertions about mutual exclusion, FIFO fairness, and
/// epoch-fenced crash recovery.
pub struct LockWorld {
    pub cluster: Cluster,
    /// Node hosting the lock table (and its lease manager).
    pub host: NodeId,
    pub clients: Vec<NodeId>,
    /// Slot of the [`LockHost`] on `host`.
    pub host_slot: ServiceSlot,
    /// Slot of each [`LockClient`] on its node (all slot 0).
    pub client_slots: Vec<ServiceSlot>,
    /// Which client fail-stops mid-run (`None` = pristine run).
    pub victim: Option<NodeId>,
}

/// `clients` closed-loop lock clients contending for `n_locks` ticket
/// locks hosted on one node's atomic region — every acquire, poll, and
/// release a single one-sided CAS, costing the host zero CPU. When
/// `crash` is set, client 0 becomes a long-holding victim that
/// fail-stops over the window: the lease manager epoch-fences its dead
/// grant so the queue moves on, and the restarted victim's release hits
/// the fence (`release_fenced`) instead of corrupting the lock.
pub fn rdma_lock_world(
    clients: u32,
    n_locks: u32,
    crash: Option<(SimTime, SimTime)>,
    seed: u64,
) -> LockWorld {
    rdma_lock_world_raced(clients, n_locks, crash, seed, RaceMode::from_env())
}

/// [`rdma_lock_world`] with an explicit race-checking mode, for the
/// strict-sanitizer determinism suites.
pub fn rdma_lock_world_raced(
    clients: u32,
    n_locks: u32,
    crash: Option<(SimTime, SimTime)>,
    seed: u64,
    race: RaceMode,
) -> LockWorld {
    assert!(clients > 0);
    let mut b = ClusterBuilder::new(seed, NetConfig::default());
    b.set_race_mode(race);
    let host = b.add_node(OsConfig::default());
    let host_slot = b.add_service(
        host,
        Box::new(LockHost::new(
            n_locks,
            SimDuration::from_millis(120),
            SimDuration::from_millis(25),
        )),
    );
    let mut nodes = Vec::new();
    let mut client_slots = Vec::new();
    for _ in 0..clients {
        let n = b.add_node(OsConfig::frontend());
        // The host's atomic region is its first registration: RegionId(0).
        let slot = b.add_service(
            n,
            Box::new(LockClient::new(
                host,
                RegionId(0),
                n_locks,
                SimDuration::from_millis(25),
            )),
        );
        // Lock clients CAS the host's region directly over RDMA with no
        // connection; declare the route so the parallel executor knows
        // these two nodes exchange events.
        b.declare_rdma_route(n, host);
        nodes.push(n);
        client_slots.push(slot);
    }
    let victim = crash.map(|(from, until)| {
        let v = nodes[0];
        let slot = client_slots[0];
        // Make the victim grabby — near-zero think time, long holds — so
        // it is overwhelmingly likely to die *inside* a critical section
        // (the case the fencing machinery exists for). Its live holds
        // stay well under the 120 ms lease, so only the crash fences.
        let c = b
            .node_service_mut::<LockClient>(v, slot)
            .expect("lock client");
        c.think_mean = SimDuration::from_millis(2);
        c.hold = SimDuration::from_millis(60);
        b.set_fault_plan(FaultPlan::new(seed ^ 0x10CC).crash(v, from, until));
        v
    });
    let cluster = b.finish(&[]);
    LockWorld {
        cluster,
        host,
        clients: nodes,
        host_slot,
        client_slots,
        victim,
    }
}

/// The canonical crash-recovery lock run: 4 clients on one lock, the
/// victim dark for `[1 s, 1.6 s)`.
pub fn rdma_lock_crash(seed: u64) -> LockWorld {
    let from = SimTime(SimDuration::from_secs(1).nanos());
    let until = SimTime(SimDuration::from_millis(1_600).nanos());
    rdma_lock_world(4, 1, Some((from, until)), seed)
}

// ---------------------------------------------------------------------------
// Chaos search — the world every sampled schedule runs against
// ---------------------------------------------------------------------------

/// The combined world the chaos search throws random fault schedules at:
/// every invariant-bearing subsystem in one cluster, so a single sampled
/// [`FaultPlan`] can probe fence gates, circuit breakers, checksum seals,
/// and lock fencing in the same run.
pub struct ChaosWorld {
    pub cluster: Cluster,
    /// Node 0: front-end running both monitoring clients.
    pub frontend: NodeId,
    /// Node 1: the monitored back-end (socket + RDMA reporters, hogs).
    pub backend: NodeId,
    /// Node 2: lock-table host. The chaos grammar never crashes it —
    /// a dead lock host stalls every client and teaches the search
    /// nothing about fencing.
    pub lock_host: NodeId,
    /// Nodes 3 and 4: closed-loop lock clients.
    pub lock_clients: Vec<NodeId>,
    /// Slot of the Socket-Sync poller on the front-end.
    pub fe_socket: ServiceSlot,
    /// Slot of the RDMA-Sync poller (breaker-guarded) on the front-end.
    pub fe_rdma: ServiceSlot,
    /// Slot of the [`LockHost`] on `lock_host`.
    pub host_slot: ServiceSlot,
    /// Slot of each [`LockClient`] on its node.
    pub client_slots: Vec<ServiceSlot>,
}

/// Monitoring poll period of the chaos world (exported so the chaos
/// grammar can size fault windows relative to the poll cadence).
pub const CHAOS_POLL: SimDuration = SimDuration(5_000_000); // 5 ms

/// Build the chaos world: five nodes wiring together every mechanism the
/// invariant registry checks.
///
/// * Front-end (node 0) runs a Socket-Sync poller and a breaker-guarded
///   RDMA-Sync poller, both with an aggressive retry policy, watching the
///   same back-end.
/// * Back-end (node 1) hosts the socket reporter (slot 0), the RDMA
///   reporter with a fallback socket path (slot 1, region 0), and two
///   compute hogs so the monitored signal moves.
/// * Node 2 hosts a one-lock [`LockHost`]; nodes 3–4 run closed-loop
///   [`LockClient`]s contending over one-sided CAS.
///
/// The sampled `plan` arrives pre-validated by the chaos planner; the
/// builder validates it again on `finish` (defense in depth, not the
/// primary gate).
pub fn chaos_world(plan: FaultPlan, seed: u64, race: RaceMode) -> ChaosWorld {
    let poll = CHAOS_POLL;
    let mut b = ClusterBuilder::new(seed, NetConfig::default());
    b.set_race_mode(race);
    let frontend = b.add_node(OsConfig::frontend());
    let backend = b.add_node(OsConfig::default());
    let lock_host = b.add_node(OsConfig::default());
    let cfg = BackendConfig {
        calc_interval: poll,
        via_kernel_module: false,
        mcast_group: McastGroup(0),
        push_target: None,
        fallback_reporter: false,
    };
    // Back-end slot 0 = socket reporter (no region), slot 1 = RDMA
    // reporter — its exported region is RegionId(0). The RDMA reporter
    // keeps a fallback socket path alive so the breaker has somewhere to
    // fail over to when a schedule degrades the RDMA op class.
    let h_sock = wire_monitoring(
        &mut b,
        Scheme::SocketSync,
        cfg,
        frontend,
        ServiceSlot(0),
        backend,
        0,
    );
    let rdma_cfg = BackendConfig {
        fallback_reporter: true,
        ..cfg
    };
    let h_rdma = wire_monitoring(
        &mut b,
        Scheme::RdmaSync,
        rdma_cfg,
        frontend,
        ServiceSlot(1),
        backend,
        0,
    );
    let retry = RetryPolicy::aggressive(poll.mul_f64(3.0));
    let mut sock = MonitorFrontendService::new(Scheme::SocketSync, false, poll, vec![h_sock]);
    sock.client.set_retry_policy(retry);
    let fe_socket = b.add_service(frontend, Box::new(sock));
    let mut rdma = MonitorFrontendService::new(Scheme::RdmaSync, false, poll, vec![h_rdma]);
    rdma.client.set_retry_policy(retry);
    rdma.client.set_breaker(BreakerConfig::default());
    let fe_rdma = b.add_service(frontend, Box::new(rdma));
    b.add_service(backend, Box::new(ComputeHogs::new(2)));
    // The host's atomic region is its first registration: RegionId(0).
    let host_slot = b.add_service(
        lock_host,
        Box::new(LockHost::new(
            1,
            SimDuration::from_millis(120),
            SimDuration::from_millis(25),
        )),
    );
    let mut lock_clients = Vec::new();
    let mut client_slots = Vec::new();
    for _ in 0..2 {
        let n = b.add_node(OsConfig::frontend());
        let slot = b.add_service(
            n,
            Box::new(LockClient::new(
                lock_host,
                RegionId(0),
                1,
                SimDuration::from_millis(25),
            )),
        );
        // Connection-less RDMA CAS traffic: declare it for shard planning.
        b.declare_rdma_route(n, lock_host);
        lock_clients.push(n);
        client_slots.push(slot);
    }
    if !plan.is_empty() {
        b.set_fault_plan(plan);
    }
    let cluster = b.finish(&[]);
    ChaosWorld {
        cluster,
        frontend,
        backend,
        lock_host,
        lock_clients,
        fe_socket,
        fe_rdma,
        host_slot,
        client_slots,
    }
}
