//! Cluster-wide run summaries: pool the per-query histograms, monitoring
//! quality, and per-node OS counters of a finished run into one report —
//! what an operator would want on one screen.

use std::fmt::Write as _;

use fgmon_balancer::Dispatcher;
use fgmon_core::{scheme_quality, MonitorClient};
use fgmon_sim::{Histogram, SimTime};
use fgmon_types::{NodeId, QueryClass, Scheme, ServiceSlot};

use crate::builder::Cluster;
use crate::report::{fmt_f, Table};

/// Pooled response-time statistics across every RUBiS query class.
#[derive(Clone, Debug)]
pub struct ResponseSummary {
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

/// Per-node OS counters at the end of a run.
#[derive(Clone, Debug)]
pub struct NodeSummary {
    pub node: NodeId,
    pub cpu_busy_secs: f64,
    pub live_threads: u32,
    pub irq_total: u64,
    pub net_bytes: u64,
}

/// Pool the response-time histograms under `prefix` (e.g. `"rubis"`).
pub fn pooled_responses(cluster: &Cluster, prefix: &str) -> Option<ResponseSummary> {
    let mut pooled = Histogram::new();
    let mut key = String::new();
    for class in QueryClass::ALL {
        key.clear();
        let _ = write!(key, "{prefix}/resp/{}", class.label());
        if let Some(h) = cluster.recorder().get_histogram(&key) {
            pooled.merge(h);
        }
    }
    // Static-content services record one flat histogram.
    key.clear();
    let _ = write!(key, "{prefix}/resp");
    if let Some(h) = cluster.recorder().get_histogram(&key) {
        pooled.merge(h);
    }
    if pooled.is_empty() {
        return None;
    }
    Some(ResponseSummary {
        count: pooled.count(),
        mean_ms: pooled.mean() / 1e6,
        p50_ms: pooled.quantile(0.5) as f64 / 1e6,
        p99_ms: pooled.quantile(0.99) as f64 / 1e6,
        max_ms: pooled.max() as f64 / 1e6,
    })
}

/// Collect end-of-run OS counters for every node.
pub fn node_summaries(cluster: &mut Cluster) -> Vec<NodeSummary> {
    let mut out = Vec::new();
    for i in 0..cluster.node_count() {
        let node_id = NodeId(i as u16);
        let node = cluster.node_mut(node_id);
        let core = node.core_mut();
        let busy: u64 = core.cpu_acct.iter().map(|a| a.busy_total.nanos()).sum();
        let irq_total: u64 = core.irq.iter().map(|c| c.total).sum();
        out.push(NodeSummary {
            node: node_id,
            cpu_busy_secs: busy as f64 / 1e9,
            live_threads: core.threads.live_count(),
            irq_total,
            net_bytes: core.stats.net.total_bytes,
        });
    }
    out
}

/// Render per-backend channel health from a monitoring client: breaker
/// state, the path polls currently take (primary vs. socket fallback),
/// the newest boot generation seen, and the transition counters. Returns
/// `None` when no breaker is installed and nothing health-related ever
/// happened, so pristine runs keep their report unchanged.
pub fn channel_health_section(client: &MonitorClient) -> Option<String> {
    let n = client.backend_count();
    let guarded = (0..n).any(|i| client.breaker_state(i).is_some());
    if !guarded && !client.health_total().any_activity() {
        return None;
    }
    let mut out = String::from("\nchannel health:\n");
    for i in 0..n {
        let state = client
            .breaker_state(i)
            .map(|s| s.label())
            .unwrap_or("unguarded");
        let path = if client.on_fallback(i) {
            "socket-fallback"
        } else {
            "primary"
        };
        let generation = client
            .generation_of(i)
            .map(|g| g.to_string())
            .unwrap_or_else(|| "-".into());
        let h = client.health_of(i);
        let _ = writeln!(
            out,
            "  {}: breaker {} path {} gen {} — trips {} reopens {} restorations {} \
             probes {} fallback-polls {} stale-rejected {} repins {} \
             corrupt-rejected {} fence-regressions {}",
            client.backend_node(i),
            state,
            path,
            generation,
            h.trips,
            h.reopens,
            h.restorations,
            h.probes,
            h.fallback_polls,
            h.stale_gen_rejected,
            h.repins,
            h.corrupt_rejected,
            h.fence_regressions,
        );
    }
    Some(out)
}

/// Render a one-screen report of a finished run.
pub fn render_report(cluster: &mut Cluster, scheme: Scheme, now: SimTime) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "run summary at {now} — scheme {}\n", scheme.label());

    if let Some(resp) = pooled_responses(cluster, "rubis") {
        let _ = writeln!(
            out,
            "rubis responses: n={} mean={:.1}ms p50={:.1}ms p99={:.1}ms max={:.1}ms",
            resp.count, resp.mean_ms, resp.p50_ms, resp.p99_ms, resp.max_ms
        );
    }
    if let Some(resp) = pooled_responses(cluster, "zipf") {
        let _ = writeln!(
            out,
            "zipf responses:  n={} mean={:.1}ms p50={:.1}ms p99={:.1}ms max={:.1}ms",
            resp.count, resp.mean_ms, resp.p50_ms, resp.p99_ms, resp.max_ms
        );
    }
    if let Some(q) = scheme_quality(cluster.recorder(), scheme) {
        let _ = writeln!(
            out,
            "monitoring:      latency mean {:.1}µs max {:.1}µs, staleness mean {:.2}ms",
            q.latency_mean_us, q.latency_max_us, q.staleness_mean_ms
        );
    }
    // Fault-injection and chaos counters: only rendered when a fault plan
    // actually evaluated frames, so pristine runs keep a pristine report.
    let fs = cluster.fabric_stats();
    if fs.fault_checks > 0 {
        let _ = writeln!(
            out,
            "fault injection: {} checks — {} dropped, {} crash-dropped, \
             {} partitioned, {} delayed, {} reordered, {} duplicated, \
             {} corrupted, {} clock-skewed",
            fs.fault_checks,
            fs.fault_dropped,
            fs.fault_crash_dropped,
            fs.fault_partitioned,
            fs.fault_delayed,
            fs.fault_reordered,
            fs.fault_duplicated,
            fs.fault_corrupted,
            fs.fault_skewed,
        );
    }
    // The chaos harness records its registry activity into the cluster's
    // recorder; surface it next to the fault counters it polices.
    if let Some(checks) = cluster.recorder().get_counter("chaos/invariant_checks") {
        let violations = cluster
            .recorder()
            .get_counter("chaos/invariant_violations")
            .map(|c| c.get())
            .unwrap_or(0);
        let _ = writeln!(
            out,
            "invariants:      {} checks passed, {} violated",
            checks.get().saturating_sub(violations),
            violations,
        );
    }
    let race = cluster.race_report();
    if race.mode != fgmon_types::RaceMode::Off {
        let _ = writeln!(
            out,
            "race check:      mode {} — {} reads tracked, {} host writes, \
             {} torn, {} seqlock retries ({} exhausted)",
            race.mode.label(),
            race.reads_tracked,
            race.host_writes,
            race.torn_total,
            race.seqlock_retries,
            race.seqlock_exhausted
        );
    }
    // Channel health of every dispatcher's monitor (usually one, on the
    // front-end).
    for i in 0..cluster.node_count() {
        let node = cluster.node(NodeId(i as u16));
        for s in 0..node.service_count() {
            if let Some(d) = node.service::<Dispatcher>(ServiceSlot(s as u16)) {
                if let Some(section) = channel_health_section(&d.monitor) {
                    out.push_str(&section);
                }
            }
        }
    }
    out.push('\n');

    let mut table = Table::new(vec!["node", "cpu busy (s)", "threads", "irqs", "net MiB"]);
    for n in node_summaries(cluster) {
        table.row(vec![
            n.node.to_string(),
            fmt_f(n.cpu_busy_secs),
            n.live_threads.to_string(),
            n.irq_total.to_string(),
            fmt_f(n.net_bytes as f64 / (1024.0 * 1024.0)),
        ]);
    }
    out.push_str(&table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::{rubis_world, RubisWorldCfg};
    use fgmon_sim::SimDuration;

    #[test]
    fn report_covers_responses_monitoring_and_nodes() {
        let cfg = RubisWorldCfg {
            backends: 2,
            rubis_sessions: 16,
            think_mean: SimDuration::from_millis(150),
            zipf: Some((0.5, 8)),
            ..Default::default()
        };
        let mut w = rubis_world(&cfg);
        w.cluster.run_for(SimDuration::from_secs(5));

        let rubis = pooled_responses(&w.cluster, "rubis").expect("rubis data");
        assert!(rubis.count > 100);
        assert!(rubis.p50_ms <= rubis.p99_ms && rubis.p99_ms <= rubis.max_ms);
        let zipf = pooled_responses(&w.cluster, "zipf").expect("zipf data");
        assert!(zipf.count > 50);
        assert!(pooled_responses(&w.cluster, "nothing").is_none());

        let nodes = node_summaries(&mut w.cluster);
        assert_eq!(nodes.len(), 4); // frontend + client + 2 backends
        let backend = &nodes[2];
        assert!(backend.cpu_busy_secs > 0.1);
        assert!(backend.irq_total > 100);
        assert!(backend.net_bytes > 10_000);

        let now = w.cluster.eng.now();
        let report = render_report(&mut w.cluster, cfg.scheme, now);
        assert!(report.contains("rubis responses"));
        assert!(report.contains("monitoring:"));
        assert!(report.contains("node2"));
    }
}
