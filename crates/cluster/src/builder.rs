//! Cluster assembly: build an engine populated with nodes, a fabric, and
//! services, mirroring the paper's 8-back-end + front-end testbed.

use std::any::Any;

use fgmon_net::Fabric;
use fgmon_os::{NodeActor, OsCore, Service};
use fgmon_sim::{
    run_sharded, Actor, ActorId, DetRng, Engine, ReplicaSet, RunOutcome, ShardPlan, SimDuration,
    SimTime,
};
use fgmon_types::{
    ConnId, FaultPlan, McastGroup, Msg, NetConfig, NodeId, NodeMsg, OsConfig, RaceDetector,
    RaceMode, RaceReport, ServiceSlot, SharedRaceDetector, TenancyConfig, TenantId,
};

/// Incrementally builds a simulated cluster.
pub struct ClusterBuilder {
    eng: Engine<Msg>,
    fabric_slot: ActorId,
    fabric: Fabric,
    nodes: Vec<ActorId>,
    rng: DetRng,
    race: Option<SharedRaceDetector>,
}

impl ClusterBuilder {
    pub fn new(seed: u64, net: NetConfig) -> Self {
        let mut eng: Engine<Msg> = Engine::new();
        let fabric_slot = eng.reserve_actor();
        let mut b = ClusterBuilder {
            eng,
            fabric_slot,
            fabric: Fabric::new(net, Vec::new()),
            nodes: Vec::new(),
            // lint: rng-construction — this is the cluster's root RNG; every
            // other stream in the simulation is forked from it by label.
            rng: DetRng::new(seed),
            race: None,
        };
        b.set_race_mode(RaceMode::from_env());
        b
    }

    /// Select the torn-read sanitizer mode. `RaceMode::Off` (the default
    /// unless `FGMON_RACE_CHECK` is set) removes the detector entirely so
    /// the hot path pays nothing. May be called at any point during
    /// assembly: the detector is (un)installed on every node added so far
    /// and on all nodes added later.
    pub fn set_race_mode(&mut self, mode: RaceMode) {
        self.race = if mode == RaceMode::Off {
            None
        } else {
            Some(RaceDetector::new_shared(mode))
        };
        let race = self.race.clone();
        for &actor in &self.nodes {
            let core = self
                .eng
                .actor_mut::<NodeActor>(actor)
                .expect("node actor")
                .core_mut();
            core.set_race_detector(race.clone());
        }
    }

    /// Add a node with the given OS configuration.
    pub fn add_node(&mut self, cfg: OsConfig) -> NodeId {
        let node_id = NodeId(self.nodes.len() as u16);
        let actor_id = self.eng.reserve_actor();
        let rng = self.rng.fork_idx("node", node_id.0 as u64);
        let mut core = OsCore::new(node_id, cfg, self.fabric_slot, actor_id, rng);
        core.set_race_detector(self.race.clone());
        self.eng.install(actor_id, Box::new(NodeActor::new(core)));
        self.nodes.push(actor_id);
        node_id
    }

    /// Mutable access to a node actor during assembly (pre-boot wiring).
    pub fn node_actor_mut(&mut self, node: NodeId) -> Option<&mut NodeActor> {
        let actor = *self.nodes.get(node.index())?;
        self.eng.actor_mut::<NodeActor>(actor)
    }

    /// Host a service on `node`; returns its slot.
    pub fn add_service(&mut self, node: NodeId, svc: Box<dyn Service>) -> ServiceSlot {
        let actor = self.nodes[node.index()];
        self.eng
            .actor_mut::<NodeActor>(actor)
            .expect("node actor")
            .add_service(svc)
    }

    /// Mutable access to a typed service on a node (pre-boot wiring).
    pub fn node_service_mut<T: Service>(
        &mut self,
        node: NodeId,
        slot: ServiceSlot,
    ) -> Option<&mut T> {
        self.node_actor_mut(node)?.service_mut::<T>(slot)
    }

    /// Register a connection between two services.
    pub fn connect(
        &mut self,
        a: NodeId,
        svc_a: ServiceSlot,
        b: NodeId,
        svc_b: ServiceSlot,
    ) -> ConnId {
        self.fabric.add_conn(a, svc_a, b, svc_b)
    }

    /// Subscribe a node to a multicast group.
    pub fn join_mcast(&mut self, group: McastGroup, node: NodeId) {
        self.fabric.join_mcast(group, node);
    }

    /// Declare a node pair that exchanges one-sided RDMA verbs without a
    /// registered connection (e.g. lock clients CAS'ing a host's atomic
    /// region). The parallel executor derives its shard channel graph
    /// from connections, multicast membership, and these declarations;
    /// an undeclared pair whose traffic crosses shards aborts the run.
    pub fn declare_rdma_route(&mut self, a: NodeId, b: NodeId) {
        self.fabric.declare_route(a, b);
    }

    /// Install a fault schedule on the fabric. Panics if the plan is
    /// malformed (see [`FaultPlan::validate`]).
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        if let Err(e) = plan.validate() {
            panic!("invalid fault plan: {e}");
        }
        self.fabric.set_fault_plan(plan);
    }

    /// Assign a node to a fabric tenant (unassigned nodes belong to the
    /// infrastructure tenant).
    pub fn set_node_tenant(&mut self, node: NodeId, tenant: TenantId) {
        self.fabric.set_node_tenant(node, tenant);
    }

    /// Install the NIC-contention model and tenant QoS policy on the
    /// fabric. Without this the fabric is tenancy-blind.
    pub fn set_tenancy(&mut self, cfg: TenancyConfig) {
        self.fabric.set_tenancy(cfg);
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Finish assembly: install the fabric, schedule boot events, and
    /// start the ground-truth probe on the given nodes.
    pub fn finish(mut self, ground_truth: &[(NodeId, SimDuration)]) -> Cluster {
        // Pre-size the engine from the known topology: one actor per node
        // plus the fabric, and an event-pool hint proportional to fan-out
        // (each node keeps a handful of timers, packets, and IRQ events in
        // flight), so steady-state scheduling never grows the queue slab.
        self.eng
            .reserve_capacity(self.nodes.len() + 1, 64 * self.nodes.len().max(1));
        let mut fabric = self.fabric;
        // Re-validate at the last gate: [`set_fault_plan`] already checks,
        // but a plan mutated through the fabric after installation (or one
        // that slipped in through a future builder path) must never reach a
        // running engine — fate draws on a malformed rule would silently
        // skew every downstream fingerprint.
        if let Err(e) = fabric.fault_plan().validate() {
            panic!("invalid fault plan: {e}");
        }
        fabric.set_node_actors(self.nodes.clone());
        if let Some(race) = &self.race {
            fabric.set_race_detector(race.clone());
        }
        // A fail-stop window ends with the node coming back *restarted*,
        // not resumed: schedule the restart at each finite window end, so
        // the node re-boots its services under a fresh boot generation
        // (crashes with `until = SimTime::MAX` never recover).
        let restarts: Vec<(SimTime, NodeId)> = fabric
            .fault_plan()
            .crashes
            .iter()
            .filter(|c| c.until < SimTime::MAX)
            .map(|c| (c.until, c.node))
            .collect();
        // The fabric is the one actor every node talks to; parallel runs
        // replicate it into each shard instead of assigning it to one.
        self.eng.mark_replicated(self.fabric_slot);
        self.eng.install(self.fabric_slot, Box::new(fabric));
        for &actor in &self.nodes {
            self.eng
                .schedule(SimTime::ZERO, actor, Msg::Node(NodeMsg::Boot));
        }
        for (at, node) in restarts {
            let actor = self.nodes[node.index()];
            self.eng.schedule(at, actor, Msg::Node(NodeMsg::Restart));
        }
        for &(node, period) in ground_truth {
            let actor = self.nodes[node.index()];
            self.eng.schedule(
                SimTime::ZERO,
                actor,
                Msg::Node(NodeMsg::GroundTruthTick {
                    period_nanos: period.nanos(),
                }),
            );
        }
        Cluster {
            eng: self.eng,
            fabric: self.fabric_slot,
            nodes: self.nodes,
            race: self.race,
            plan_cache: None,
        }
    }
}

/// A fully assembled cluster ready to run.
pub struct Cluster {
    pub eng: Engine<Msg>,
    pub fabric: ActorId,
    nodes: Vec<ActorId>,
    race: Option<SharedRaceDetector>,
    /// Shard plan memoized per shard count: the topology (and therefore
    /// the affinity partition and channel graph) is fixed after
    /// `finish`, and rebuilding it per `run_parallel` segment would put
    /// avoidable allocations on the steady-state path.
    plan_cache: Option<(usize, ShardPlan)>,
}

impl Cluster {
    /// Run for `dur` of virtual time.
    pub fn run_for(&mut self, dur: SimDuration) -> RunOutcome {
        self.eng.run_for(dur)
    }

    /// Run for `dur` of virtual time across `threads` worker shards.
    ///
    /// Bitwise identical to [`Cluster::run_for`]: nodes are grouped
    /// onto shards by communication affinity (a greedy partition of the
    /// fabric's chatter graph, so ring/rack neighbors land together and
    /// most traffic stays shard-local), the fabric is replicated into
    /// every shard, and the bounded-lag window width comes from the
    /// fabric's minimum cross-shard latency. The shard channel graph is
    /// derived from the same chatter edges, so a shard's watermark only
    /// waits on shards it actually exchanges events with. Falls back to
    /// the sequential engine when fewer than two shards are possible.
    pub fn run_parallel(&mut self, dur: SimDuration, threads: usize) -> RunOutcome {
        let lookahead = self
            .eng
            .actor::<Fabric>(self.fabric)
            .expect("fabric actor")
            .lookahead();
        let shards = threads.min(self.nodes.len());
        if shards < 2 || lookahead == SimDuration::ZERO {
            return self.run_for(dur);
        }
        let horizon = self.eng.now() + dur;
        if self.plan_cache.as_ref().is_none_or(|(s, _)| *s != shards) {
            let chatter = self
                .eng
                .actor::<Fabric>(self.fabric)
                .expect("fabric actor")
                .chatter_edges();
            let node_edges: Vec<(usize, usize, u64)> = chatter
                .iter()
                .map(|&(a, b, w)| (a.index(), b.index(), w))
                .collect();
            let groups = ShardPlan::affinity_groups(self.nodes.len(), shards, &node_edges);
            let mut shard_of = vec![0u16; self.eng.actor_count()];
            shard_of[self.fabric.index()] = ShardPlan::REPLICATED;
            for (i, actor) in self.nodes.iter().enumerate() {
                shard_of[actor.index()] = groups[i];
            }
            let mut plan = ShardPlan::new(shard_of, shards);
            let actor_edges: Vec<(usize, usize)> = chatter
                .iter()
                .map(|&(a, b, _)| (self.nodes[a.index()].index(), self.nodes[b.index()].index()))
                .collect();
            plan.derive_channels(&actor_edges);
            self.plan_cache = Some((shards, plan));
        }
        let plan = &self.plan_cache.as_ref().expect("plan cached above").1;
        let fabric_replicas = self
            .eng
            .actor::<Fabric>(self.fabric)
            .expect("fabric actor")
            .split_for_shards(shards);
        let replicas = vec![ReplicaSet {
            id: self.fabric,
            replicas: fabric_replicas
                .into_iter()
                .map(|f| Box::new(f) as Box<dyn Actor<Msg>>)
                .collect(),
        }];
        let returned = run_sharded(&mut self.eng, horizon, lookahead, plan, replicas);
        // Fold every replica's traffic counters back into the main
        // fabric so `fabric_stats` reports the whole run.
        let mut total = fgmon_net::FabricStats::default();
        for set in &returned {
            for r in &set.replicas {
                let f = (r.as_ref() as &dyn Any)
                    .downcast_ref::<Fabric>()
                    .expect("fabric replica");
                total.absorb(&f.stats);
            }
        }
        self.eng
            .actor_mut::<Fabric>(self.fabric)
            .expect("fabric actor")
            .stats
            .absorb(&total);
        if self.eng.queue_len() > 0 {
            RunOutcome::HorizonReached
        } else {
            RunOutcome::QueueDrained
        }
    }

    /// Engine actor id of a node.
    pub fn actor_of(&self, node: NodeId) -> ActorId {
        self.nodes[node.index()]
    }

    /// Borrow a node actor.
    pub fn node(&self, node: NodeId) -> &NodeActor {
        self.eng
            .actor::<NodeActor>(self.actor_of(node))
            .expect("node actor")
    }

    pub fn node_mut(&mut self, node: NodeId) -> &mut NodeActor {
        let actor = self.actor_of(node);
        self.eng.actor_mut::<NodeActor>(actor).expect("node actor")
    }

    /// Borrow a service hosted on a node.
    pub fn service<T: Service>(&self, node: NodeId, slot: ServiceSlot) -> &T {
        self.node(node)
            .service::<T>(slot)
            .expect("service downcast")
    }

    pub fn service_mut<T: Service>(&mut self, node: NodeId, slot: ServiceSlot) -> &mut T {
        self.node_mut(node)
            .service_mut::<T>(slot)
            .expect("service downcast")
    }

    pub fn recorder(&self) -> &fgmon_sim::Recorder {
        self.eng.recorder()
    }

    /// Snapshot of the fabric's frame counters (including fault decisions).
    pub fn fabric_stats(&self) -> fgmon_net::FabricStats {
        self.eng
            .actor::<Fabric>(self.fabric)
            .expect("fabric actor")
            .stats
    }

    /// Zero the fabric's frame counters so a follow-up `run_for` segment
    /// measures only itself (the fault plan and its RNG are untouched).
    pub fn reset_fabric_stats(&mut self) {
        self.eng
            .actor_mut::<Fabric>(self.fabric)
            .expect("fabric actor")
            .reset_stats();
    }

    /// Snapshot of the torn-read sanitizer's findings. Returns a default
    /// (mode `Off`, all counters zero) report when the sanitizer was not
    /// enabled for this cluster.
    pub fn race_report(&self) -> RaceReport {
        match &self.race {
            Some(race) => race.borrow().report().clone(),
            None => RaceReport::default(),
        }
    }

    /// Active sanitizer mode for this cluster.
    pub fn race_mode(&self) -> RaceMode {
        match &self.race {
            Some(race) => race.borrow().mode(),
            None => RaceMode::Off,
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}
