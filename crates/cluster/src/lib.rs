//! # fgmon-cluster — testbed assembly and experiment scenarios
//!
//! Builds complete simulated clusters mirroring the paper's testbed
//! (8 dual-CPU back-ends behind a front-end dispatcher on an
//! InfiniBand-like fabric) and provides one pre-wired *world* per
//! experiment family:
//!
//! * [`scenarios::micro_latency`] — Fig. 3;
//! * [`scenarios::float_granularity`] — Fig. 4;
//! * [`scenarios::accuracy_world`] — Figs. 5–6;
//! * [`scenarios::rubis_world`] — Table 1, Figs. 7 and 9;
//! * [`scenarios::ganglia_world`] — Fig. 8;
//! * [`scenarios::lossy_fabric`], [`scenarios::congested_switch`],
//!   [`scenarios::crash_during_burst`] — fault-injected robustness
//!   scenarios (no paper figure; the adversarial axis);
//! * [`scenarios::torn_read_world`] — the race sanitizer's canonical
//!   RDMA-read/host-write overlap reproducer;
//! * [`scenarios::flaky_rdma_failover`],
//!   [`scenarios::crash_restart_recovery`] — self-healing monitoring
//!   channels: circuit-breaker failover to the socket path and
//!   epoch-fenced crash-restart re-registration.
//!
//! Plus plain-text/CSV table rendering ([`report`]) and a multi-threaded
//! parameter-sweep runner ([`sweep`]).

pub mod builder;
pub mod report;
pub mod scenarios;
pub mod summary;
pub mod sweep;

pub use builder::{Cluster, ClusterBuilder};
pub use report::Table;
pub use scenarios::{
    accuracy_world, big_cluster, chaos_world, congested_switch, crash_during_burst,
    crash_restart_recovery, fault_compare_world, fault_compare_world_raced, flaky_rdma_failover,
    float_granularity, ganglia_world, gray_failure_world, lossy_fabric, micro_latency,
    noisy_neighbor, noisy_neighbor_qos, noisy_neighbor_raced, noisy_rubis, quiet_neighbor,
    rdma_lock_crash, rdma_lock_world, rdma_lock_world_raced, rubis_world, torn_read_world,
    AccuracyWorld, BigClusterWorld, ChaosWorld, CrashWorld, FailoverWorld, FaultCompareWorld,
    FloatWorld, GangliaWorld, LockWorld, MicroWorld, NoisyWorld, RubisWorld, RubisWorldCfg,
    TornReadWorld, CHAOS_POLL, GT_PERIOD, NOISY_RATE_LIMIT,
};
pub use summary::{
    channel_health_section, node_summaries, pooled_responses, render_report, NodeSummary,
    ResponseSummary,
};
pub use sweep::sweep_parallel;
