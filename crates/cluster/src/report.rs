//! Plain-text table rendering for harness output — aligned columns, plus
//! CSV export, so every figure/table of the paper can be printed the way
//! the paper reports it.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths = vec![0usize; ncols];
        for (i, h) in self.header.iter().enumerate() {
            widths[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths[i] - c.chars().count();
                // Right-align numeric-looking cells, left-align the rest.
                let numeric = c
                    .chars()
                    .all(|ch| ch.is_ascii_digit() || ".-+%xe".contains(ch));
                if numeric && !c.is_empty() {
                    for _ in 0..pad {
                        out.push(' ');
                    }
                    out.push_str(c);
                } else {
                    out.push_str(c);
                    for _ in 0..pad {
                        out.push(' ');
                    }
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        for _ in 0..total {
            out.push('-');
        }
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let esc = |c: &str| {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| esc(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Format a float with sensible precision for tables.
pub fn fmt_f(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(vec!["Query", "Avg", "Max"]);
        t.row(vec!["Home", "3", "416"]);
        t.row(vec!["BrowseRegions", "6", "392"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Query"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Numeric columns right-aligned: the two Max values end at the
        // same column.
        assert_eq!(lines[2].len(), lines[3].len());
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y", "plain"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",plain"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn fmt_float_precision() {
        assert_eq!(fmt_f(0.0), "0");
        assert_eq!(fmt_f(1234.6), "1235");
        assert_eq!(fmt_f(12.34), "12.3");
        assert_eq!(fmt_f(0.1234), "0.123");
    }
}
