//! Criterion microbenches: workload generators and full-cluster
//! simulation rates.

use criterion::{criterion_group, criterion_main, Criterion};
use fgmon_cluster::{rubis_world, RubisWorldCfg};
use fgmon_sim::{DetRng, SimDuration};
use fgmon_types::QueryClass;
use fgmon_workload::{QueryProfile, TransitionMatrix, ZipfCatalog};

fn bench_rubis_sampling(c: &mut Criterion) {
    c.bench_function("workload/rubis_demand_10k", |b| {
        let mut rng = DetRng::new(4);
        let profiles: Vec<QueryProfile> = QueryClass::ALL
            .iter()
            .map(|&q| QueryProfile::of(q))
            .collect();
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..10_000 {
                acc += profiles[i % 8].sample_cpu(&mut rng).nanos();
            }
            acc
        });
    });
}

fn bench_transition_walk(c: &mut Criterion) {
    c.bench_function("workload/session_walk_10k", |b| {
        let m = TransitionMatrix::default();
        let mut rng = DetRng::new(5);
        b.iter(|| {
            let mut class = QueryClass::Home;
            for _ in 0..10_000 {
                class = m.next(class, &mut rng);
            }
            class
        });
    });
}

fn bench_zipf_catalog(c: &mut Criterion) {
    c.bench_function("workload/zipf_catalog_build_1k", |b| {
        b.iter(|| {
            let mut rng = DetRng::new(6);
            ZipfCatalog::new(1_000, 0.75, &mut rng).len()
        });
    });
}

fn bench_cluster_second(c: &mut Criterion) {
    let mut g = c.benchmark_group("cluster/rubis_sim_one_second");
    g.sample_size(10);
    g.bench_function("8_backends_96_sessions", |b| {
        b.iter(|| {
            let cfg = RubisWorldCfg {
                backends: 8,
                rubis_sessions: 96,
                think_mean: SimDuration::from_millis(100),
                seed: 3,
                ..Default::default()
            };
            let mut w = rubis_world(&cfg);
            w.cluster.run_for(SimDuration::from_secs(1));
            w.cluster.eng.events_processed()
        });
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_rubis_sampling,
    bench_transition_walk,
    bench_zipf_catalog,
    bench_cluster_second
);
criterion_main!(benches);
