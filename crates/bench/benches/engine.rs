//! Criterion microbenches: DES engine fundamentals — event throughput,
//! scheduler dispatch, metric recording.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgmon_sim::{Actor, ActorId, Ctx, DetRng, Engine, Histogram, SimDuration, SimTime};

/// Self-ping actor: one event per hop.
struct Pinger {
    hops: u64,
}

impl Actor<u64> for Pinger {
    fn handle(&mut self, _now: SimTime, msg: u64, ctx: &mut Ctx<'_, u64>) {
        if msg < self.hops {
            ctx.send_self_in(SimDuration::from_micros(1), msg + 1);
        }
    }
}

fn bench_event_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine/event_throughput");
    for &n in &[1_000u64, 100_000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut eng: Engine<u64> = Engine::new();
                let a = eng.add_actor(Box::new(Pinger { hops: n }));
                eng.schedule(SimTime::ZERO, a, 0);
                eng.run_until(SimTime::MAX);
                eng.events_processed()
            });
        });
    }
    g.finish();
}

/// Fan-out actor set: events bounce among k actors (queue pressure).
struct Bouncer {
    peers: Vec<ActorId>,
    remaining: u64,
    rng: DetRng,
}

impl Actor<u64> for Bouncer {
    fn handle(&mut self, _now: SimTime, _msg: u64, ctx: &mut Ctx<'_, u64>) {
        if self.remaining == 0 {
            return;
        }
        self.remaining -= 1;
        let dst = self.peers[self.rng.index(self.peers.len())];
        ctx.send_in(SimDuration::from_micros(self.rng.range_u64(1, 50)), dst, 0);
    }
}

fn bench_multi_actor(c: &mut Criterion) {
    c.bench_function("engine/64_actors_bounce", |b| {
        b.iter(|| {
            let mut eng: Engine<u64> = Engine::new();
            let ids: Vec<ActorId> = (0..64).map(|_| eng.reserve_actor()).collect();
            for (i, &id) in ids.iter().enumerate() {
                eng.install(
                    id,
                    Box::new(Bouncer {
                        peers: ids.clone(),
                        remaining: 1_000,
                        rng: DetRng::new(i as u64),
                    }),
                );
            }
            for &id in &ids {
                eng.schedule(SimTime::ZERO, id, 0);
            }
            eng.run_until(SimTime::MAX);
            eng.events_processed()
        });
    });
}

fn bench_histogram_record(c: &mut Criterion) {
    c.bench_function("metrics/histogram_record_10k", |b| {
        let mut rng = DetRng::new(3);
        let values: Vec<u64> = (0..10_000)
            .map(|_| rng.range_u64(100, 10_000_000))
            .collect();
        b.iter(|| {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            h.quantile(0.99)
        });
    });
}

fn bench_zipf_sampling(c: &mut Criterion) {
    use fgmon_sim::ZipfSampler;
    c.bench_function("workload/zipf_sample_10k", |b| {
        let z = ZipfSampler::new(10_000, 0.75);
        let mut rng = DetRng::new(9);
        b.iter(|| {
            let mut acc = 0usize;
            for _ in 0..10_000 {
                acc += z.sample(&mut rng);
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    bench_event_throughput,
    bench_multi_actor,
    bench_histogram_record,
    bench_zipf_sampling
);
criterion_main!(benches);
