//! Criterion microbenches: how much host time one simulated second of
//! each monitoring scheme costs (simulator efficiency per scheme), plus
//! the load-index computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgmon_cluster::micro_latency;
use fgmon_sim::SimDuration;
use fgmon_types::{LoadSnapshot, LoadWeights, NodeCapacity, OsConfig, Scheme};

fn bench_scheme_simulation(c: &mut Criterion) {
    let mut g = c.benchmark_group("schemes/sim_one_second");
    g.sample_size(10);
    for &scheme in &Scheme::MICRO {
        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut w = micro_latency(
                        scheme,
                        8,
                        true,
                        SimDuration::from_millis(10),
                        OsConfig::default(),
                        1,
                    );
                    w.cluster.run_for(SimDuration::from_secs(1));
                    w.cluster.eng.events_processed()
                });
            },
        );
    }
    g.finish();
}

fn bench_load_index(c: &mut Criterion) {
    let weights = LoadWeights::with_irq_signal();
    let cap = NodeCapacity::default();
    let mut snap = LoadSnapshot::zero();
    snap.cpu_util = 0.7;
    snap.run_queue = 9;
    snap.loadavg1 = 6.5;
    snap.mem_used_kb = 700_000;
    snap.net_kbps = 120_000.0;
    snap.active_conns = 48;
    snap.pending_irqs = [3, 8, 0, 0];
    c.bench_function("schemes/load_index", |b| {
        b.iter(|| weights.index(&snap, &cap));
    });
}

criterion_group!(benches, bench_scheme_simulation, bench_load_index);
criterion_main!(benches);
