//! Criterion-driven ablations of the design choices DESIGN.md calls out:
//! scheduler quantum, wake boost, and the multicast-push extension.
//! (These measure *simulated outcomes*, reported via custom measurements
//! of virtual quantities is not what Criterion does, so we measure the
//! host cost of each configuration and print the simulated results once.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fgmon_cluster::micro_latency;
use fgmon_sim::{SimDuration, NANOS_PER_MILLI};
use fgmon_types::{CostModel, OsConfig, Scheme};

fn quantum_cfg(quantum_ms: u64) -> OsConfig {
    OsConfig {
        costs: CostModel {
            quantum: SimDuration(quantum_ms * NANOS_PER_MILLI),
            ..CostModel::default()
        },
        ..OsConfig::default()
    }
}

/// Ablation: socket monitoring latency under load for different scheduler
/// quanta (larger quanta stretch the monitor's queueing delay).
fn ablation_quantum(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/quantum");
    g.sample_size(10);
    for &q in &[1u64, 10, 100] {
        // Print the simulated outcome once per configuration.
        let mut w = micro_latency(
            Scheme::SocketSync,
            16,
            false,
            SimDuration::from_millis(50),
            quantum_cfg(q),
            11,
        );
        w.cluster.run_for(SimDuration::from_secs(5));
        let lat = w
            .cluster
            .recorder()
            .get_histogram("mon/latency/Socket-Sync")
            .map(|h| h.mean() / 1e6)
            .unwrap_or(f64::NAN);
        eprintln!("[ablation] quantum={q}ms -> Socket-Sync mean latency {lat:.2}ms");

        g.bench_with_input(BenchmarkId::from_parameter(q), &q, |b, &q| {
            b.iter(|| {
                let mut w = micro_latency(
                    Scheme::SocketSync,
                    16,
                    false,
                    SimDuration::from_millis(50),
                    quantum_cfg(q),
                    11,
                );
                w.cluster.run_for(SimDuration::from_secs(1));
                w.cluster.eng.events_processed()
            });
        });
    }
    g.finish();
}

/// Ablation: wake boost on/off (paper: the kernel "tries to schedule the
/// resource monitoring process as early as possible" on packet arrival).
fn ablation_wake_boost(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/wake_boost");
    g.sample_size(10);
    for &boost in &[false, true] {
        let cfg = OsConfig {
            wake_boost: boost,
            ..OsConfig::default()
        };
        let mut w = micro_latency(
            Scheme::SocketSync,
            24,
            false,
            SimDuration::from_millis(50),
            cfg,
            13,
        );
        w.cluster.run_for(SimDuration::from_secs(5));
        let lat = w
            .cluster
            .recorder()
            .get_histogram("mon/latency/Socket-Sync")
            .map(|h| h.mean() / 1e6)
            .unwrap_or(f64::NAN);
        eprintln!("[ablation] wake_boost={boost} -> Socket-Sync mean latency {lat:.2}ms");

        g.bench_with_input(BenchmarkId::from_parameter(boost), &boost, |b, _| {
            b.iter(|| {
                let cfg = OsConfig {
                    wake_boost: boost,
                    ..OsConfig::default()
                };
                let mut w = micro_latency(
                    Scheme::SocketSync,
                    24,
                    false,
                    SimDuration::from_millis(50),
                    cfg,
                    13,
                );
                w.cluster.run_for(SimDuration::from_secs(1));
                w.cluster.eng.events_processed()
            });
        });
    }
    g.finish();
}

/// Ablation: the multicast-push extension vs. the pull schemes.
fn ablation_multicast(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/multicast_push");
    g.sample_size(10);
    for &scheme in &[Scheme::McastPush, Scheme::RdmaSync] {
        let mut w = micro_latency(
            scheme,
            16,
            false,
            SimDuration::from_millis(50),
            OsConfig::default(),
            17,
        );
        w.cluster.run_for(SimDuration::from_secs(5));
        let stale = w
            .cluster
            .recorder()
            .get_histogram(&format!("mon/staleness/{}", scheme.label()))
            .map(|h| h.mean() / 1e6)
            .unwrap_or(f64::NAN);
        eprintln!("[ablation] {} -> staleness {stale:.2}ms", scheme.label());

        g.bench_with_input(
            BenchmarkId::from_parameter(scheme.label()),
            &scheme,
            |b, &scheme| {
                b.iter(|| {
                    let mut w = micro_latency(
                        scheme,
                        16,
                        false,
                        SimDuration::from_millis(50),
                        OsConfig::default(),
                        17,
                    );
                    w.cluster.run_for(SimDuration::from_secs(1));
                    w.cluster.eng.events_processed()
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    ablation_quantum,
    ablation_wake_boost,
    ablation_multicast
);
criterion_main!(benches);
