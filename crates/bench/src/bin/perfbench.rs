//! Hot-path performance harness: drives the standard scenarios under a
//! counting allocator and reports events/sec, wall time, and allocation
//! counts. `--write-json PATH` emits the machine-readable trajectory file
//! (`BENCH_PR9.json` at the repo root is the committed baseline;
//! `BENCH_PR5.json` holds the old barrier-executor rows, kept frozen as
//! the pre-watermark reference). `--threads 1,2,4` additionally sweeps
//! the big-cluster scenario through the watermark sharded executor at
//! each listed shard count.
//!
//! This binary lives outside the lint-guarded sim path on purpose: it is
//! the one place in the workspace allowed to read the wall clock.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

use fgmon_cluster::scenarios::{
    big_cluster, flaky_rdma_failover, rubis_world, torn_read_world, RubisWorldCfg,
};
use fgmon_sim::{QueueKind, SimDuration};
use fgmon_types::{RaceMode, Scheme};

/// Global allocator that counts every allocation so the harness can prove
/// the event loop runs allocation-free in steady state.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static DEALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static LIVE_BYTES: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES: AtomicUsize = AtomicUsize::new(0);

static TRACING: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

thread_local! {
    static IN_TRACE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if TRACING.load(Ordering::Relaxed) {
            IN_TRACE.with(|flag| {
                if !flag.get() {
                    flag.set(true);
                    let n = ALLOCS.load(Ordering::Relaxed);
                    if n.is_multiple_of(101) {
                        eprintln!(
                            "--- steady alloc #{n} ({} bytes) ---\n{}",
                            layout.size(),
                            std::backtrace::Backtrace::force_capture()
                        );
                    }
                    flag.set(false);
                }
            });
        }
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        DEALLOCS.fetch_add(1, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(new_size, Ordering::Relaxed) + new_size;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
        LIVE_BYTES.fetch_sub(layout.size(), Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[derive(Clone, Copy, Default)]
struct AllocSnapshot {
    allocs: u64,
    bytes: u64,
}

fn alloc_snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: ALLOC_BYTES.load(Ordering::Relaxed),
    }
}

/// One measured scenario point.
struct Measurement {
    scenario: &'static str,
    queue: &'static str,
    backends: u16,
    /// Worker shards the run was split across (1 = sequential engine).
    threads: usize,
    virtual_secs: u64,
    events: u64,
    wall_secs: f64,
    events_per_sec: f64,
    /// Allocations during the *run* phase (world construction excluded).
    run_allocs: u64,
    run_alloc_bytes: u64,
    /// Allocations in the steady-state tail (second half of the run):
    /// zero here proves the event loop recycles everything it needs.
    steady_allocs: u64,
    peak_bytes: u64,
    /// Cores the host exposed when this row was measured. Parallel rows
    /// are only meaningful relative to rows taken on the same core
    /// count: a 2-shard run on one core measures coordination overhead,
    /// on two cores it measures speedup.
    host_cpus: usize,
}

fn host_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Identity of one benchmark point: what ran, how big, how sharded.
#[derive(Clone, Copy)]
struct Point {
    scenario: &'static str,
    queue: QueueKind,
    backends: u16,
    threads: usize,
    virtual_secs: u64,
}

fn measure<W>(
    point: Point,
    build: impl FnOnce() -> W,
    run: impl Fn(&mut W, SimDuration),
    events_of: impl Fn(&W) -> u64,
) -> Measurement {
    let Point {
        scenario,
        queue,
        backends,
        threads,
        virtual_secs,
    } = point;
    eprintln!(
        "[perfbench] {scenario}/{} b={backends} t={threads}...",
        queue.label()
    );
    let mut world = build();
    // Warm half: fills capacity-sized buffers, populates recorder keys.
    let half = SimDuration::from_secs(virtual_secs.div_ceil(2));
    // Rebase the allocation high-water mark to what is live *now*, so
    // `peak_bytes` reports this measurement's own peak rather than the
    // largest world ever built in the process (earlier rows used to leak
    // their footprint into every later one).
    PEAK_BYTES.store(LIVE_BYTES.load(Ordering::Relaxed), Ordering::Relaxed);
    let before = alloc_snapshot();
    let start = Instant::now();
    run(&mut world, half);
    let mid = alloc_snapshot();
    if std::env::var_os("PERFBENCH_TRACE_ALLOCS").is_some() {
        TRACING.store(true, Ordering::Relaxed);
    }
    run(&mut world, half);
    TRACING.store(false, Ordering::Relaxed);
    let wall = start.elapsed().as_secs_f64();
    let after = alloc_snapshot();
    let events = events_of(&world);
    Measurement {
        scenario,
        queue: queue.label(),
        backends,
        threads,
        virtual_secs,
        events,
        wall_secs: wall,
        events_per_sec: events as f64 / wall,
        run_allocs: after.allocs - before.allocs,
        run_alloc_bytes: after.bytes - before.bytes,
        steady_allocs: after.allocs - mid.allocs,
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed) as u64,
        host_cpus: host_cpus(),
    }
}

/// Drive a cluster either sequentially or through the sharded executor;
/// both paths are bitwise identical, so the measured trajectory is the
/// same and only the wall clock differs.
fn drive(cluster: &mut fgmon_cluster::Cluster, dur: SimDuration, threads: usize) {
    if threads <= 1 {
        cluster.run_for(dur);
    } else {
        cluster.run_parallel(dur, threads);
    }
}

fn measure_rubis(
    queue: QueueKind,
    backends: u16,
    threads: usize,
    virtual_secs: u64,
    seed: u64,
) -> Measurement {
    measure(
        Point {
            scenario: "rubis",
            queue,
            backends,
            threads,
            virtual_secs,
        },
        || {
            let cfg = RubisWorldCfg {
                backends,
                rubis_sessions: 16 * backends as u32,
                seed,
                ..Default::default()
            };
            let mut w = rubis_world(&cfg);
            w.cluster.eng.set_queue_kind(queue);
            w
        },
        |w, dur| drive(&mut w.cluster, dur, threads),
        |w| w.cluster.eng.events_processed(),
    )
}

fn measure_torn_read(queue: QueueKind, virtual_secs: u64, seed: u64) -> Measurement {
    measure(
        Point {
            scenario: "torn_read_world",
            queue,
            backends: 3,
            threads: 1,
            virtual_secs,
        },
        || {
            let mut w = torn_read_world(RaceMode::Strict, seed);
            w.cluster.eng.set_queue_kind(queue);
            w
        },
        |w, dur| {
            w.cluster.run_for(dur);
        },
        |w| w.cluster.eng.events_processed(),
    )
}

fn measure_failover(queue: QueueKind, virtual_secs: u64, seed: u64) -> Measurement {
    measure(
        Point {
            scenario: "flaky_rdma_failover",
            queue,
            backends: 4,
            threads: 1,
            virtual_secs,
        },
        || {
            let mut w = flaky_rdma_failover(Scheme::RdmaSync, seed);
            w.world.cluster.eng.set_queue_kind(queue);
            w
        },
        |w, dur| {
            w.world.cluster.run_for(dur);
        },
        |w| w.world.cluster.eng.events_processed(),
    )
}

/// The thread-scaling target: hundreds of back-ends with east-west ring
/// chatter, doorbell-batched RDMA polling from the front-end, and a
/// closed-loop RUBiS client.
fn measure_big_cluster(backends: u16, threads: usize, virtual_secs: u64, seed: u64) -> Measurement {
    measure(
        Point {
            scenario: "big_cluster",
            queue: QueueKind::Wheel,
            backends,
            threads,
            virtual_secs,
        },
        || {
            let mut w = big_cluster(backends, seed);
            w.cluster.eng.set_queue_kind(QueueKind::Wheel);
            w
        },
        |w, dur| drive(&mut w.cluster, dur, threads),
        |w| w.cluster.eng.events_processed(),
    )
}

fn print_table(rows: &[Measurement]) {
    println!(
        "{:<22} {:<6} {:>8} {:>7} {:>7} {:>12} {:>10} {:>12} {:>14} {:>13}",
        "scenario",
        "queue",
        "backends",
        "threads",
        "vsecs",
        "events",
        "wall (s)",
        "events/sec",
        "run allocs",
        "steady allocs"
    );
    for m in rows {
        println!(
            "{:<22} {:<6} {:>8} {:>7} {:>7} {:>12} {:>10.3} {:>12.0} {:>14} {:>13}",
            m.scenario,
            m.queue,
            m.backends,
            m.threads,
            m.virtual_secs,
            m.events,
            m.wall_secs,
            m.events_per_sec,
            m.run_allocs,
            m.steady_allocs
        );
    }
}

/// Events/sec measured on the pre-overhaul tree (commit b96170b: BinaryHeap
/// queue, per-request routing allocations, no LTO) with the identical
/// methodology — best-of-5, 10 virtual seconds, seed 42, `16 × backends`
/// sessions — recorded as `(backends, events_per_sec)` so the committed JSON
/// stays self-describing when regenerated. The event counts matched the
/// current tree bitwise (41436 / 84381 / 172124), confirming every
/// optimization preserved the simulated trajectory.
const PRE_CHANGE_RUBIS_BASELINE: &[(u16, f64)] =
    &[(4, 3_051_712.0), (8, 2_679_577.0), (16, 2_652_165.0)];

fn json_escape_free(rows: &[Measurement], quick: bool) -> String {
    // All values are numbers or fixed identifiers; no escaping needed.
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"fgmon perf trajectory\",\n");
    out.push_str("  \"pr\": 9,\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_cpus\": {},\n", host_cpus()));
    out.push_str(
        "  \"parallel_note\": \"threads > 1 rows exercise the watermark sharded \
         executor (bitwise identical trajectory); on a single-core host the \
         cooperative driver runs the same protocol without threads, so those rows \
         measure coordination overhead — wall-clock speedup needs as many physical \
         cores as shards and is only comparable between rows with equal host_cpus\",\n",
    );
    out.push_str(
        "  \"pre_change_baseline\": {\n    \"description\": \"rubis events/sec on the \
         pre-overhaul tree (BinaryHeap queue), best-of-5, 10 vsecs, seed 42\",\n    \
         \"rubis_events_per_sec\": {\n",
    );
    for (i, (b, eps)) in PRE_CHANGE_RUBIS_BASELINE.iter().enumerate() {
        out.push_str(&format!(
            "      \"{}\": {:.0}{}\n",
            b,
            eps,
            if i + 1 == PRE_CHANGE_RUBIS_BASELINE.len() {
                ""
            } else {
                ","
            }
        ));
    }
    out.push_str("    }\n  },\n");
    // Improvement ratios vs. that frozen baseline, for every full-mode
    // rubis/wheel row with a matching backend count.
    let improvements: Vec<(u16, f64)> = rows
        .iter()
        .filter(|m| {
            m.scenario == "rubis" && m.queue == "wheel" && m.virtual_secs == 10 && m.threads == 1
        })
        .filter_map(|m| {
            PRE_CHANGE_RUBIS_BASELINE
                .iter()
                .find(|&&(b, _)| b == m.backends)
                .map(|&(b, base)| (b, m.events_per_sec / base))
        })
        .collect();
    if !improvements.is_empty() {
        out.push_str("  \"improvement_vs_pre_change\": {\n");
        for (i, (b, ratio)) in improvements.iter().enumerate() {
            out.push_str(&format!(
                "    \"{}\": {:.2}{}\n",
                b,
                ratio,
                if i + 1 == improvements.len() { "" } else { "," }
            ));
        }
        out.push_str("  },\n");
    }
    // Thread-scaling ratios on the big-cluster scenario: events/sec at
    // each thread count over the same backend count's sequential rate.
    // Only rows measured on the same core count are paired — mixing a
    // 1-thread row from a 1-core host with a 2-thread row from an
    // 8-core host would report meaningless "speedup".
    let scaling: Vec<(u16, usize, usize, f64)> = rows
        .iter()
        .filter(|m| m.scenario == "big_cluster" && m.threads > 1)
        .filter_map(|m| {
            rows.iter()
                .find(|b| {
                    b.scenario == "big_cluster"
                        && b.threads == 1
                        && b.backends == m.backends
                        && b.host_cpus == m.host_cpus
                })
                .map(|b| {
                    (
                        m.backends,
                        m.threads,
                        m.host_cpus,
                        m.events_per_sec / b.events_per_sec,
                    )
                })
        })
        .collect();
    if !scaling.is_empty() {
        out.push_str("  \"speedup_vs_1_thread\": [\n");
        for (i, (b, t, cpus, ratio)) in scaling.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"backends\": {b}, \"threads\": {t}, \"host_cpus\": {cpus}, \
                 \"ratio\": {ratio:.2}}}{}\n",
                if i + 1 == scaling.len() { "" } else { "," }
            ));
        }
        out.push_str("  ],\n");
    }
    out.push_str("  \"measurements\": [\n");
    for (i, m) in rows.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"scenario\": \"{}\", \"queue\": \"{}\", \"backends\": {}, \
             \"threads\": {}, \"host_cpus\": {}, \"virtual_secs\": {}, \"events\": {}, \
             \"wall_secs\": {:.4}, \"events_per_sec\": {:.0}, \"run_allocs\": {}, \
             \"run_alloc_bytes\": {}, \"steady_allocs\": {}, \"peak_bytes\": {}}}{}\n",
            m.scenario,
            m.queue,
            m.backends,
            m.threads,
            m.host_cpus,
            m.virtual_secs,
            m.events,
            m.wall_secs,
            m.events_per_sec,
            m.run_allocs,
            m.run_alloc_bytes,
            m.steady_allocs,
            m.peak_bytes,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Extract `"key": value` from one line of the committed JSON. The file is
/// emitted by this binary, so the shape is fixed — one measurement object
/// per line — and a field scan beats dragging in a JSON parser.
fn json_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(rest[..end].trim().trim_matches('"'))
}

/// A committed reference point: (scenario, queue, backends, threads,
/// host_cpus, events/sec, steady allocs).
type CommittedRow = (String, String, u16, usize, usize, f64, u64);

fn load_committed(path: &str) -> Vec<CommittedRow> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--check: cannot read {path}: {e}"));
    text.lines()
        .filter(|l| l.contains("\"scenario\""))
        .map(|l| {
            let get = |k: &str| {
                json_field(l, k).unwrap_or_else(|| panic!("--check: missing {k} in: {l}"))
            };
            (
                get("scenario").to_string(),
                get("queue").to_string(),
                get("backends").parse().expect("backends"),
                // Pre-parallel baselines carry no threads field; they were
                // all sequential runs.
                json_field(l, "threads").map_or(1, |v| v.parse().expect("threads")),
                // Pre-PR9 baselines carry host_cpus only at the top level;
                // those rows were all taken on the single-core CI host.
                json_field(l, "host_cpus").map_or(1, |v| v.parse().expect("host_cpus")),
                get("events_per_sec").parse().expect("events_per_sec"),
                get("steady_allocs").parse().expect("steady_allocs"),
            )
        })
        .collect()
}

/// CI perf smoke: every scenario measured in this run must reach at least
/// `MIN_RATIO` of the committed events/sec for the same (scenario, queue,
/// backends, threads) point, and must not allocate more in steady state
/// than the committed run did. Rows compare only against the *same*
/// thread count on the *same* host core count — wall-clock rates from
/// different core counts are incommensurable. Events/sec is a rate, so
/// quick runs (fewer virtual
/// seconds) compare meaningfully against the committed full run. The
/// steady-alloc budget gets a small fixed slack: the residual allocations
/// are one-off buffer doublings whose placement shifts with run length,
/// while a reintroduced per-event allocation shows up as thousands.
fn check_against(rows: &[Measurement], committed: &[CommittedRow]) -> bool {
    const MIN_RATIO: f64 = 0.8;
    const STEADY_SLACK: u64 = 8;
    /// How many more steady-state allocations per shard a parallel run
    /// may make than the same scenario run sequentially in the same
    /// process. Mailbox flush buffers are recycled (zero per-window
    /// allocations), so the honest residue is the per-segment fork:
    /// one recorder clone, one fabric replica, and queue scaffolding
    /// per shard, independent of virtual time. A reintroduced
    /// per-event or per-window allocation shows up as thousands.
    const PARALLEL_ALLOC_SLACK_PER_SHARD: u64 = 160;
    let mut ok = true;
    let mut compared = 0;
    for m in rows {
        let Some((_, _, _, _, _, base_eps, base_steady)) =
            committed.iter().find(|(s, q, b, t, cpus, _, _)| {
                s == m.scenario
                    && q == m.queue
                    && *b == m.backends
                    && *t == m.threads
                    && *cpus == m.host_cpus
            })
        else {
            // A committed row taken on a different core count says
            // nothing about this host; skip rather than mis-gate.
            continue;
        };
        compared += 1;
        let ratio = m.events_per_sec / base_eps;
        if ratio < MIN_RATIO {
            eprintln!(
                "FAIL {}/{} b={} t={}: {:.0} events/sec is {:.2}x the committed {:.0} (floor {MIN_RATIO}x)",
                m.scenario, m.queue, m.backends, m.threads, m.events_per_sec, ratio, base_eps
            );
            ok = false;
        }
        if m.steady_allocs > base_steady + STEADY_SLACK {
            eprintln!(
                "FAIL {}/{} b={} t={}: {} steady-state allocations, committed baseline has {} \
                 (+{STEADY_SLACK} slack)",
                m.scenario, m.queue, m.backends, m.threads, m.steady_allocs, base_steady
            );
            ok = false;
        }
    }
    // The parallel-vs-sequential allocation gate needs no committed
    // file: within this run, a sharded row must allocate like its own
    // sequential twin — this is what proves flush buffers recycle.
    for m in rows.iter().filter(|m| m.threads > 1) {
        let Some(base) = rows.iter().find(|b| {
            b.scenario == m.scenario
                && b.queue == m.queue
                && b.backends == m.backends
                && b.threads == 1
        }) else {
            continue;
        };
        compared += 1;
        let slack = PARALLEL_ALLOC_SLACK_PER_SHARD * m.threads as u64;
        if m.steady_allocs > base.steady_allocs + slack {
            eprintln!(
                "FAIL {}/{} b={} t={}: {} steady-state allocations vs {} sequential \
                 (+{slack} slack) — mailbox buffers are not recycling",
                m.scenario, m.queue, m.backends, m.threads, m.steady_allocs, base.steady_allocs
            );
            ok = false;
        }
    }
    if compared == 0 {
        eprintln!("FAIL --check: no measured point matches the committed file");
        return false;
    }
    if ok {
        println!("perf smoke: {compared} points within {MIN_RATIO}x rate / steady-alloc budget");
    }
    ok
}

/// Repeat a measurement and keep the fastest run: the benchmark machine
/// is a single shared core, so the minimum wall time is the least-noisy
/// estimate of the true cost (events and allocation counts are identical
/// across repeats — the simulation is deterministic).
fn best_of(repeat: u32, f: impl Fn() -> Measurement) -> Measurement {
    let mut best = f();
    for _ in 1..repeat {
        let m = f();
        if m.wall_secs < best.wall_secs {
            best = m;
        }
    }
    best
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut write_json: Option<String> = None;
    let mut check: Option<String> = None;
    let mut seed = 42u64;
    let mut heap_only = false;
    let mut repeat = 0u32;
    let mut threads: Vec<usize> = vec![1];
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => quick = true,
            "--heap-only" => heap_only = true,
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .expect("--threads LIST")
                    .split(',')
                    .map(|v| v.parse().expect("--threads takes 1 or 1,2,4"))
                    .collect();
                assert!(!threads.is_empty(), "--threads LIST must be non-empty");
            }
            "--write-json" => {
                i += 1;
                write_json = Some(args.get(i).expect("--write-json PATH").clone());
            }
            "--check" => {
                i += 1;
                check = Some(args.get(i).expect("--check PATH").clone());
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|v| v.parse().ok()).expect("--seed N");
            }
            "--repeat" => {
                i += 1;
                repeat = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .expect("--repeat N");
            }
            other => {
                eprintln!("unknown flag {other}");
                eprintln!(
                    "usage: perfbench [--quick] [--heap-only] [--seed N] [--threads LIST] \
                     [--repeat N] [--write-json PATH] [--check PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let vsecs = if quick { 4 } else { 10 };
    let sizes: &[u16] = if quick { &[8] } else { &[4, 8, 16] };
    if repeat == 0 {
        repeat = if quick { 3 } else { 5 };
    }
    let mut rows = Vec::new();

    // The old binary-heap queue first: the pre-overhaul baseline every
    // later number is compared against. The classic scenarios always run
    // sequentially — they guard the single-thread hot path.
    for &b in sizes {
        rows.push(best_of(repeat, || {
            measure_rubis(QueueKind::Heap, b, 1, vsecs, seed)
        }));
    }
    if !heap_only {
        for &b in sizes {
            rows.push(best_of(repeat, || {
                measure_rubis(QueueKind::Wheel, b, 1, vsecs, seed)
            }));
        }
        rows.push(best_of(repeat, || {
            measure_torn_read(QueueKind::Heap, vsecs, seed)
        }));
        rows.push(best_of(repeat, || {
            measure_torn_read(QueueKind::Wheel, vsecs, seed)
        }));
        rows.push(best_of(repeat, || {
            measure_failover(QueueKind::Heap, vsecs, seed)
        }));
        rows.push(best_of(repeat, || {
            measure_failover(QueueKind::Wheel, vsecs, seed)
        }));
        // The thread-scaling sweep: every requested shard count over the
        // large-cluster scenario. Big worlds are expensive, so fewer
        // virtual seconds than the hot-path rows — but the full repeat
        // count, because the speedup ratios divide two best-of rows and
        // inherit both rows' noise.
        let big_sizes: &[u16] = if quick { &[64] } else { &[64, 128, 256] };
        let big_vsecs = if quick { 1 } else { 3 };
        let big_repeat = repeat;
        for &t in &threads {
            for &b in big_sizes {
                rows.push(best_of(big_repeat, || {
                    measure_big_cluster(b, t, big_vsecs, seed)
                }));
            }
        }
    }

    print_table(&rows);

    // Headline ratio: wheel vs. heap on the largest rubis point.
    let heap = rows
        .iter()
        .rfind(|m| m.scenario == "rubis" && m.queue == "heap");
    let wheel = rows
        .iter()
        .rfind(|m| m.scenario == "rubis" && m.queue == "wheel");
    if let (Some(h), Some(w)) = (heap, wheel) {
        println!(
            "\nrubis {}-backend speedup (wheel vs heap queue): {:.2}x",
            h.backends,
            w.events_per_sec / h.events_per_sec
        );
    }

    if let Some(path) = write_json {
        std::fs::write(&path, json_escape_free(&rows, quick)).expect("write json");
        println!("wrote {path}");
    }

    if let Some(path) = check {
        if !check_against(&rows, &load_committed(&path)) {
            std::process::exit(1);
        }
    }
}
