//! Figure 4: impact on application performance of the four schemes as the
//! monitoring granularity shrinks from 1024 ms to 1 ms.
//!
//! Reports the average application delay normalized to the application
//! execution time (0 = undisturbed).

use fgmon_bench::HarnessOpts;
use fgmon_cluster::{float_granularity, sweep_parallel, Table};
use fgmon_sim::SimDuration;
use fgmon_types::Scheme;
use fgmon_workload::FloatApp;

fn main() {
    let opts = HarnessOpts::parse(15);
    let grans_ms: Vec<u64> = if opts.quick {
        vec![1, 64, 1024]
    } else {
        vec![1, 4, 16, 64, 256, 1024]
    };

    let mut points = Vec::new();
    for &g in &grans_ms {
        for &scheme in &Scheme::MICRO {
            points.push((scheme, g));
        }
    }

    let rows = sweep_parallel(points, |&(scheme, g)| {
        let mut w = float_granularity(scheme, SimDuration::from_millis(g), opts.seed);
        w.cluster.run_for(SimDuration::from_secs(opts.seconds));
        let app: &FloatApp = w
            .cluster
            .node(w.backend)
            .service(w.app_slot)
            .expect("float app");
        (scheme, g, app.mean_normalized_delay())
    });

    let mut table = Table::new(vec![
        "granularity (ms)",
        "Socket-Async",
        "Socket-Sync",
        "RDMA-Async",
        "RDMA-Sync",
    ]);
    for &g in &grans_ms {
        let mut cells = vec![g.to_string()];
        for &scheme in &Scheme::MICRO {
            let (_, _, delay) = rows
                .iter()
                .find(|r| r.0 == scheme && r.1 == g)
                .expect("point computed");
            cells.push(format!("{delay:.4}"));
        }
        table.row(cells);
    }
    opts.print(
        "Figure 4 — normalized application delay vs. monitoring granularity",
        &table,
    );
}
