//! Figure 9: fine-grained vs. coarse-grained monitoring — throughput of
//! the co-hosted RUBiS + Zipf (α=0.5) cluster for load-fetching
//! granularities from 64 ms to 4096 ms.
//!
//! The paper's headline: at coarse granularity (1024 ms+) the schemes
//! converge; at 64 ms the RDMA-Sync cluster admits up to ~25% more
//! requests, while the socket schemes *lose* throughput to their own
//! monitoring overhead.

use fgmon_bench::{improvement_pct, HarnessOpts};
use fgmon_cluster::{rubis_world, sweep_parallel, RubisWorldCfg, Table};
use fgmon_sim::SimDuration;
use fgmon_types::Scheme;
use fgmon_workload::{RubisClient, ZipfClient};

fn main() {
    let opts = HarnessOpts::parse(25);
    let grans_ms: Vec<u64> = if opts.quick {
        vec![64, 4096]
    } else {
        vec![64, 128, 256, 512, 1024, 2048, 4096]
    };

    // Average each point over several seeds: closed-loop throughput is
    // chaotic run to run.
    let reps: u64 = if opts.quick { 2 } else { 4 };
    let mut points = Vec::new();
    for &g in &grans_ms {
        for &s in &Scheme::MICRO {
            for rep in 0..reps {
                points.push((g, s, rep));
            }
        }
    }

    let raw = sweep_parallel(points, |&(g, scheme, rep)| {
        let cfg = RubisWorldCfg {
            scheme,
            backends: 8,
            rubis_sessions: 192,
            think_mean: SimDuration::from_millis(30),
            zipf: Some((0.5, 96)),
            granularity: SimDuration::from_millis(g),
            seed: opts.seed ^ (rep * 0x9E37_79B9),
            ..Default::default()
        };
        let mut w = rubis_world(&cfg);
        w.cluster.run_for(SimDuration::from_secs(opts.seconds));
        let rubis: &RubisClient = w.cluster.service(w.client_node, w.rubis_client_slot);
        let zipf: &ZipfClient = w
            .cluster
            .service(w.client_node, w.zipf_client_slot.expect("zipf"));
        (g, scheme, (rubis.completed + zipf.completed) as f64)
    });
    let mut results: Vec<(u64, Scheme, f64)> = Vec::new();
    for &g in &grans_ms {
        for &s in &Scheme::MICRO {
            let total: f64 = raw
                .iter()
                .filter(|r| r.0 == g && r.1 == s)
                .map(|r| r.2)
                .sum();
            results.push((g, s, total / reps as f64));
        }
    }

    let tp = |g: u64, s: Scheme| {
        results
            .iter()
            .find(|r| r.0 == g && r.1 == s)
            .expect("point computed")
            .2
    };

    let mut table = Table::new(vec![
        "granularity (ms)",
        "Socket-Async",
        "Socket-Sync",
        "RDMA-Async",
        "RDMA-Sync",
        "RDMA-Sync vs Socket-Async %",
    ]);
    for &g in &grans_ms {
        let base = tp(g, Scheme::SocketAsync);
        table.row(vec![
            g.to_string(),
            format!("{:.0}", tp(g, Scheme::SocketAsync)),
            format!("{:.0}", tp(g, Scheme::SocketSync)),
            format!("{:.0}", tp(g, Scheme::RdmaAsync)),
            format!("{:.0}", tp(g, Scheme::RdmaSync)),
            format!("{:+.1}", improvement_pct(tp(g, Scheme::RdmaSync), base)),
        ]);
    }
    opts.print(
        "Figure 9 — throughput (completed requests) vs. load-fetching granularity",
        &table,
    );
}
