//! Tenancy table: monitoring accuracy and freshness versus hostile
//! co-tenant load, with and without tenant QoS. Regenerates the
//! accuracy-vs-hostile-load table in EXPERIMENTS.md.

use fgmon_bench::HarnessOpts;
use fgmon_cluster::{noisy_neighbor_raced, sweep_parallel, Table, NOISY_RATE_LIMIT};
use fgmon_core::{mean_deviation, scheme_quality, AccuracyMetric};
use fgmon_sim::SimDuration;
use fgmon_types::{QosPolicy, RaceMode, Scheme};

fn main() {
    let opts = HarnessOpts::parse(5);
    let configs: Vec<(&str, QosPolicy, bool)> = if opts.quick {
        vec![
            ("quiet", QosPolicy::None, false),
            ("hostile", QosPolicy::None, true),
        ]
    } else {
        vec![
            ("quiet", QosPolicy::None, false),
            ("hostile", QosPolicy::None, true),
            ("rate-limit", NOISY_RATE_LIMIT, true),
            ("priority-qp", QosPolicy::PriorityQp, true),
        ]
    };

    let results = sweep_parallel(configs, |&(label, qos, hostile)| {
        let mut w = noisy_neighbor_raced(qos, hostile, opts.seed, RaceMode::Off);
        w.cluster.run_for(SimDuration::from_secs(opts.seconds));
        let rec = w.cluster.recorder();
        let sdev = mean_deviation(rec, Scheme::SocketSync, w.backend, AccuracyMetric::CpuUtil)
            .unwrap_or(f64::NAN);
        let rdev = mean_deviation(rec, Scheme::RdmaSync, w.backend, AccuracyMetric::CpuUtil)
            .unwrap_or(f64::NAN);
        let sstale = scheme_quality(rec, Scheme::SocketSync)
            .map(|q| q.staleness_mean_ms)
            .unwrap_or(f64::NAN);
        let rstale = scheme_quality(rec, Scheme::RdmaSync)
            .map(|q| q.staleness_mean_ms)
            .unwrap_or(f64::NAN);
        let t = w.cluster.fabric_stats().tenants;
        let thrashed: u64 = t.iter().map(|x| x.thrashed).sum();
        let shed: u64 = t.iter().map(|x| x.contention_dropped).sum();
        let limited: u64 = t.iter().map(|x| x.rate_limited).sum();
        (label, sdev, rdev, sstale, rstale, thrashed, shed, limited)
    });

    let mut table = Table::new(vec![
        "config",
        "socket CPU dev",
        "rdma CPU dev",
        "socket stale (ms)",
        "rdma stale (ms)",
        "thrashed",
        "shed",
        "rate-limited",
    ]);
    for (label, sdev, rdev, sstale, rstale, thrashed, shed, limited) in results {
        table.row(vec![
            label.to_string(),
            format!("{sdev:.5}"),
            format!("{rdev:.5}"),
            format!("{sstale:.3}"),
            format!("{rstale:.3}"),
            thrashed.to_string(),
            shed.to_string(),
            limited.to_string(),
        ]);
    }
    if opts.csv {
        print!("{}", table.to_csv());
    } else {
        println!("Monitoring accuracy/freshness vs hostile co-tenant load");
        println!(
            "(noisy-neighbor world, seed {}, {} s)",
            opts.seed, opts.seconds
        );
        println!();
        print!("{}", table.render());
    }
}
