//! Figure 7: throughput improvement over Socket-Async for the co-hosted
//! RUBiS + Zipf-trace cluster, as the Zipf α varies from 0.25 to 0.9.
//!
//! Lower α ⇒ less temporal locality ⇒ more divergent per-request demand ⇒
//! more to gain from fresh fine-grained load information.

use fgmon_bench::{improvement_pct, HarnessOpts};
use fgmon_cluster::{rubis_world, sweep_parallel, RubisWorldCfg, Table};
use fgmon_sim::SimDuration;
use fgmon_types::Scheme;
use fgmon_workload::{RubisClient, ZipfClient};

fn main() {
    let opts = HarnessOpts::parse(25);
    let alphas: Vec<f64> = if opts.quick {
        vec![0.25, 0.9]
    } else {
        vec![0.25, 0.5, 0.75, 0.9]
    };
    let schemes = Scheme::ALL_PAPER;

    // Closed-loop cluster throughput is chaotic run to run (herding
    // feedback); average each point over several seeds.
    let reps: u64 = if opts.quick { 2 } else { 4 };
    let mut points = Vec::new();
    for &a in &alphas {
        for &s in &schemes {
            for rep in 0..reps {
                points.push((a, s, rep));
            }
        }
    }

    let raw = sweep_parallel(points, |&(alpha, scheme, rep)| {
        let cfg = RubisWorldCfg {
            scheme,
            backends: 8,
            rubis_sessions: 192,
            think_mean: SimDuration::from_millis(30),
            zipf: Some((alpha, 96)),
            granularity: SimDuration::from_millis(50),
            seed: opts.seed ^ (rep * 0x9E37_79B9),
            ..Default::default()
        };
        let mut w = rubis_world(&cfg);
        w.cluster.run_for(SimDuration::from_secs(opts.seconds));
        let rubis: &RubisClient = w.cluster.service(w.client_node, w.rubis_client_slot);
        let zipf: &ZipfClient = w
            .cluster
            .service(w.client_node, w.zipf_client_slot.expect("zipf"));
        (alpha, scheme, (rubis.completed + zipf.completed) as f64)
    });
    // Average the repetitions.
    let mut results: Vec<(f64, fgmon_types::Scheme, f64)> = Vec::new();
    for &a in &alphas {
        for &s in &schemes {
            let total: f64 = raw
                .iter()
                .filter(|r| r.0 == a && r.1 == s)
                .map(|r| r.2)
                .sum();
            results.push((a, s, total / reps as f64));
        }
    }

    let tp = |alpha: f64, scheme: Scheme| -> f64 {
        results
            .iter()
            .find(|r| r.0 == alpha && r.1 == scheme)
            .expect("point computed")
            .2
    };

    let mut table = Table::new(vec![
        "alpha",
        "Socket-Sync %",
        "RDMA-Async %",
        "RDMA-Sync %",
        "e-RDMA-Sync %",
        "baseline req",
    ]);
    for &alpha in &alphas {
        let base = tp(alpha, Scheme::SocketAsync);
        table.row(vec![
            format!("{alpha}"),
            format!(
                "{:+.1}",
                improvement_pct(tp(alpha, Scheme::SocketSync), base)
            ),
            format!(
                "{:+.1}",
                improvement_pct(tp(alpha, Scheme::RdmaAsync), base)
            ),
            format!("{:+.1}", improvement_pct(tp(alpha, Scheme::RdmaSync), base)),
            format!(
                "{:+.1}",
                improvement_pct(tp(alpha, Scheme::ERdmaSync), base)
            ),
            format!("{base:.0}"),
        ]);
    }
    opts.print(
        "Figure 7 — throughput improvement vs. Socket-Async (RUBiS + Zipf trace)",
        &table,
    );
}
