//! Table 1: average and maximum response times (ms) of the RUBiS query
//! classes under each monitoring scheme, with the WebSphere-style
//! least-loaded dispatcher using the monitored information.

use fgmon_bench::HarnessOpts;
use fgmon_cluster::{rubis_world, sweep_parallel, RubisWorldCfg, Table};
use fgmon_sim::SimDuration;
use fgmon_types::{QueryClass, Scheme};

fn main() {
    let opts = HarnessOpts::parse(30);
    let schemes: Vec<Scheme> = if opts.quick {
        vec![Scheme::SocketAsync, Scheme::RdmaSync]
    } else {
        Scheme::ALL_PAPER.to_vec()
    };

    let results = sweep_parallel(schemes.clone(), |&scheme| {
        let cfg = RubisWorldCfg {
            scheme,
            backends: 8,
            rubis_sessions: 288,
            think_mean: SimDuration::from_millis(100),
            zipf: None,
            granularity: SimDuration::from_millis(50),
            seed: opts.seed,
            ..Default::default()
        };
        let mut w = rubis_world(&cfg);
        w.cluster.run_for(SimDuration::from_secs(opts.seconds));
        let mut rows = Vec::new();
        for class in QueryClass::ALL {
            let h = w
                .cluster
                .recorder()
                .get_histogram(&format!("rubis/resp/{}", class.label()));
            let (avg, max, n) = match h {
                Some(h) if !h.is_empty() => (h.mean() / 1e6, h.max() as f64 / 1e6, h.count()),
                _ => (f64::NAN, f64::NAN, 0),
            };
            rows.push((class, avg, max, n));
        }
        (scheme, rows)
    });

    // Average response time block.
    let mut header = vec!["Query".to_string()];
    for s in &schemes {
        header.push(format!("{} avg", s.label()));
    }
    for s in &schemes {
        header.push(format!("{} max", s.label()));
    }
    let mut table = Table::new(header);
    for (ci, class) in QueryClass::ALL.iter().enumerate() {
        let mut cells = vec![class.label().to_string()];
        for (_, rows) in &results {
            cells.push(format!("{:.1}", rows[ci].1));
        }
        for (_, rows) in &results {
            cells.push(format!("{:.0}", rows[ci].2));
        }
        table.row(cells);
    }
    opts.print(
        "Table 1 — RUBiS response times (ms) per query class and scheme",
        &table,
    );

    // Completed-request summary.
    let mut summary = Table::new(vec!["scheme", "total responses"]);
    for (scheme, rows) in &results {
        let total: u64 = rows.iter().map(|r| r.3).sum();
        summary.row(vec![scheme.label().to_string(), total.to_string()]);
    }
    println!();
    opts.print("Requests completed per scheme", &summary);
}
