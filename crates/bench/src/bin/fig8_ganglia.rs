//! Figure 8: maximum response time of two RUBiS queries
//! (SearchItemsInRegion, Browse) while Ganglia + gmetric perform
//! fine-grained monitoring through each scheme, for monitoring thresholds
//! from 1 ms to 4096 ms.

use fgmon_bench::HarnessOpts;
use fgmon_cluster::{ganglia_world, sweep_parallel, RubisWorldCfg, Table};
use fgmon_sim::SimDuration;
use fgmon_types::Scheme;

fn main() {
    let opts = HarnessOpts::parse(20);
    let grans_ms: Vec<u64> = if opts.quick {
        vec![1, 64, 4096]
    } else {
        vec![1, 4, 16, 64, 256, 1024, 4096]
    };

    let mut points = Vec::new();
    for &g in &grans_ms {
        for &s in &Scheme::MICRO {
            points.push((g, s));
        }
    }

    let results = sweep_parallel(points, |&(g, scheme)| {
        let base = RubisWorldCfg {
            scheme: Scheme::ERdmaSync, // the dispatcher per §5.2.2
            backends: 8,
            rubis_sessions: 416,
            think_mean: SimDuration::from_millis(100),
            seed: opts.seed,
            ..Default::default()
        };
        let mut w = ganglia_world(&base, scheme, SimDuration::from_millis(g));
        w.rubis
            .cluster
            .run_for(SimDuration::from_secs(opts.seconds));
        let rec = w.rubis.cluster.recorder();
        // Pool every query class for a stable tail statistic alongside
        // the paper's per-query maximum.
        let mut pooled = fgmon_sim::Histogram::new();
        for class in fgmon_types::QueryClass::ALL {
            if let Some(h) = rec.get_histogram(&format!("rubis/resp/{}", class.label())) {
                pooled.merge(h);
            }
        }
        let max_of = |key: &str| {
            rec.get_histogram(key)
                .map(|h| h.max() as f64 / 1e6)
                .unwrap_or(f64::NAN)
        };
        (
            g,
            scheme,
            max_of("rubis/resp/SearchItemsReg"),
            max_of("rubis/resp/Browse"),
            pooled.quantile(0.99) as f64 / 1e6,
            pooled.mean() / 1e6,
        )
    });

    for (title, pick) in [
        (
            "Figure 8a — max response time of SearchItemInCategories-like query (ms)",
            2usize,
        ),
        ("Figure 8b — max response time of Browse query (ms)", 3usize),
        (
            "Figure 8 (supplement) — p99 response time, all queries pooled (ms)",
            4usize,
        ),
        (
            "Figure 8 (supplement) — mean response time, all queries pooled (ms)",
            5usize,
        ),
    ] {
        let mut table = Table::new(vec![
            "gmetric threshold (ms)",
            "Socket-Async",
            "Socket-Sync",
            "RDMA-Async",
            "RDMA-Sync",
        ]);
        for &g in &grans_ms {
            let mut cells = vec![g.to_string()];
            for &scheme in &Scheme::MICRO {
                let r = results
                    .iter()
                    .find(|r| r.0 == g && r.1 == scheme)
                    .expect("point computed");
                let v = match pick {
                    2 => r.2,
                    3 => r.3,
                    4 => r.4,
                    _ => r.5,
                };
                cells.push(format!("{v:.1}"));
            }
            table.row(cells);
        }
        opts.print(title, &table);
        println!();
    }
}
