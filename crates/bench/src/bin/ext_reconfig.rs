//! Extension experiment (paper §7 future work): dynamic reconfiguration
//! of a shared data-center. The back-ends are partitioned between the
//! RUBiS and Zipf services; a reconfiguration manager inside the
//! dispatcher reassigns nodes based on the monitored load.
//!
//! The experiment compares the partitioned cluster with and without
//! reconfiguration across monitoring schemes: with a demand mix that the
//! static half-half split serves badly, the manager must discover the
//! imbalance from monitoring data and move nodes — so fresher information
//! converges faster and admits more requests.

use fgmon_balancer::{Dispatcher, ReconfigPolicy};
use fgmon_bench::{improvement_pct, HarnessOpts};
use fgmon_cluster::{rubis_world, sweep_parallel, RubisWorldCfg, Table};
use fgmon_sim::SimDuration;
use fgmon_types::Scheme;
use fgmon_workload::{RubisClient, ZipfClient};

fn main() {
    let opts = HarnessOpts::parse(25);
    let schemes: Vec<Scheme> = if opts.quick {
        vec![Scheme::SocketAsync, Scheme::RdmaSync]
    } else {
        Scheme::ALL_PAPER.to_vec()
    };

    // Three cluster organizations: fully shared (no partition), a static
    // half/half partition, and a monitored-reconfiguration partition.
    #[derive(Clone, Copy, PartialEq, Debug)]
    enum Org {
        Shared,
        StaticPartition,
        Reconfigured,
    }
    let orgs = [Org::Shared, Org::StaticPartition, Org::Reconfigured];

    let mut points = Vec::new();
    for &s in &schemes {
        for &org in &orgs {
            points.push((s, org));
        }
    }

    let results = sweep_parallel(points, |&(scheme, org)| {
        let reconfig = match org {
            Org::Shared => None,
            Org::StaticPartition => Some(ReconfigPolicy {
                hysteresis: f64::INFINITY,
                ..ReconfigPolicy::default()
            }),
            Org::Reconfigured => Some(ReconfigPolicy::default()),
        };
        // Demand skew: many RUBiS sessions, few Zipf sessions — the
        // half/half initial partition starves the dynamic service.
        let cfg = RubisWorldCfg {
            scheme,
            backends: 8,
            rubis_sessions: 224,
            think_mean: SimDuration::from_millis(40),
            zipf: Some((0.5, 24)),
            granularity: SimDuration::from_millis(50),
            reconfig,
            seed: opts.seed,
            ..Default::default()
        };
        let mut w = rubis_world(&cfg);
        w.cluster.run_for(SimDuration::from_secs(opts.seconds));
        let rubis: &RubisClient = w.cluster.service(w.client_node, w.rubis_client_slot);
        let zipf: &ZipfClient = w
            .cluster
            .service(w.client_node, w.zipf_client_slot.expect("zipf"));
        let disp: &Dispatcher = w.cluster.service(w.frontend, w.dispatcher_slot);
        let (moves, dynamic_nodes) = disp
            .reconfig
            .as_ref()
            .map(|r| {
                (
                    r.events.len(),
                    r.count(fgmon_balancer::ServiceClass::Dynamic),
                )
            })
            .unwrap_or((0, 0));
        (
            scheme,
            org,
            rubis.completed + zipf.completed,
            moves,
            dynamic_nodes,
        )
    });

    let mut table = Table::new(vec![
        "scheme",
        "shared",
        "static split",
        "reconfigured",
        "gain vs static %",
        "moves",
        "final dyn nodes",
    ]);
    for &scheme in &schemes {
        let get = |org: Org| {
            results
                .iter()
                .find(|r| r.0 == scheme && r.1 == org)
                .expect("run computed")
        };
        let shared = get(Org::Shared);
        let stat = get(Org::StaticPartition);
        let reconf = get(Org::Reconfigured);
        table.row(vec![
            scheme.label().to_string(),
            shared.2.to_string(),
            stat.2.to_string(),
            reconf.2.to_string(),
            format!("{:+.1}", improvement_pct(reconf.2 as f64, stat.2 as f64)),
            reconf.3.to_string(),
            reconf.4.to_string(),
        ]);
    }
    opts.print(
        "Extension — dynamic reconfiguration of the shared data-center (§7)",
        &table,
    );
    println!();
    println!("'shared' lets every node serve both services (no isolation);");
    println!("'static split' partitions 8 back-ends half/half forever;");
    println!("'reconfigured' lets the monitoring-driven manager move nodes");
    println!("between the services as the monitored load dictates.");
}
