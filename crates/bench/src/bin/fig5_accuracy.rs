//! Figure 5: accuracy of the load information obtained by the four
//! schemes, against a fine-granularity ground-truth probe (the paper's
//! kernel module), while client load ramps up and down.
//!
//! (a) deviation of the reported number of threads;
//! (b) deviation of the reported CPU load.

use fgmon_bench::HarnessOpts;
use fgmon_cluster::{accuracy_world, sweep_parallel, Table};
use fgmon_core::{mean_deviation, AccuracyMetric};
use fgmon_sim::{SimDuration, SimTime};
use fgmon_types::Scheme;
use fgmon_workload::RampStep;

fn ramp(total_secs: u64) -> Vec<RampStep> {
    // Triangle ramp 0 → 24 → 0 hog threads across the run.
    let steps = 12u64;
    let step_ns = total_secs * 1_000_000_000 / (steps + 1);
    (0..=steps)
        .map(|i| RampStep {
            at: SimTime(i * step_ns),
            hogs: if i <= steps / 2 {
                (i * 4) as u32
            } else {
                ((steps - i) * 4) as u32
            },
        })
        .collect()
}

fn main() {
    let opts = HarnessOpts::parse(12);

    // One world runs all four schemes simultaneously (the paper's setup),
    // so the sweep is over polling intervals only.
    let polls_ms: Vec<u64> = if opts.quick { vec![50] } else { vec![10, 50] };

    let results = sweep_parallel(polls_ms.clone(), |&poll| {
        let mut w = accuracy_world(
            SimDuration::from_millis(poll),
            ramp(opts.seconds),
            24,
            false,
            false,
            opts.seed,
        );
        w.cluster.run_for(SimDuration::from_secs(opts.seconds));
        let rec = w.cluster.recorder();
        let mut rows = Vec::new();
        for &scheme in &Scheme::MICRO {
            let th = mean_deviation(rec, scheme, w.backend, AccuracyMetric::NThreads)
                .unwrap_or(f64::NAN);
            let cpu =
                mean_deviation(rec, scheme, w.backend, AccuracyMetric::CpuUtil).unwrap_or(f64::NAN);
            let rq = mean_deviation(rec, scheme, w.backend, AccuracyMetric::RunQueue)
                .unwrap_or(f64::NAN);
            rows.push((scheme, th, cpu, rq));
        }
        (poll, rows)
    });

    let mut table = Table::new(vec![
        "poll (ms)",
        "scheme",
        "dev nthreads (5a)",
        "dev cpu load (5b)",
        "dev run queue",
    ]);
    for (poll, rows) in &results {
        for (scheme, th, cpu, rq) in rows {
            table.row(vec![
                poll.to_string(),
                scheme.label().to_string(),
                format!("{th:.3}"),
                format!("{cpu:.4}"),
                format!("{rq:.3}"),
            ]);
        }
    }
    opts.print(
        "Figure 5 — mean absolute deviation of reported load vs. kernel ground truth",
        &table,
    );
}
