//! Figure 6: number of pending interrupts reported on both CPUs by each
//! scheme (the `irq_stat` kernel structure), under communication-heavy
//! background load.
//!
//! The user-space schemes — even with the helper kernel module exposing
//! `irq_stat` — only sample once their reporting process is scheduled, by
//! which time the interrupt backlog has drained; the kernel-registered
//! RDMA-Sync read observes the true backlog, more often and with higher
//! counts, and shows the second CPU servicing more interrupts.

use fgmon_bench::HarnessOpts;
use fgmon_cluster::{accuracy_world, Table};
use fgmon_sim::{SimDuration, SimTime};
use fgmon_types::Scheme;
use fgmon_workload::RampStep;

fn main() {
    let opts = HarnessOpts::parse(15);

    let mut w = accuracy_world(
        SimDuration::from_millis(10),
        vec![RampStep {
            at: SimTime::ZERO,
            hogs: 8,
        }],
        0,
        true, // communication chatter -> interrupt pressure
        true, // kernel module exposes irq_stat to the user-space schemes
        opts.seed,
    );
    w.cluster.run_for(SimDuration::from_secs(opts.seconds));
    let rec = w.cluster.recorder();
    let node = w.backend;

    let mut table = Table::new(vec![
        "scheme",
        "mean pending cpu0",
        "mean pending cpu1",
        "nonzero samples %",
        "samples",
    ]);
    for &scheme in &Scheme::MICRO {
        let label = scheme.label();
        let c0 = rec
            .get_series(&format!("mon/{label}/{node}/pending_irqs_cpu0"))
            .map(|s| s.mean())
            .unwrap_or(f64::NAN);
        let c1 = rec
            .get_series(&format!("mon/{label}/{node}/pending_irqs_cpu1"))
            .map(|s| s.mean())
            .unwrap_or(f64::NAN);
        let total = rec
            .get_series(&format!("mon/{label}/{node}/pending_irqs"))
            .expect("series");
        let nonzero = total.values().filter(|&v| v > 0.0).count();
        table.row(vec![
            label.to_string(),
            format!("{c0:.4}"),
            format!("{c1:.4}"),
            format!("{:.1}", nonzero as f64 / total.len().max(1) as f64 * 100.0),
            total.len().to_string(),
        ]);
    }

    // Ground truth for reference (what a perfect observer sees).
    let gt0 = rec
        .get_series(&format!("gt/{node}/pending_irqs_cpu0"))
        .map(|s| s.mean())
        .unwrap_or(f64::NAN);
    let gt1 = rec
        .get_series(&format!("gt/{node}/pending_irqs_cpu1"))
        .map(|s| s.mean())
        .unwrap_or(f64::NAN);
    table.row(vec![
        "(ground truth)".to_string(),
        format!("{gt0:.4}"),
        format!("{gt1:.4}"),
        String::new(),
        String::new(),
    ]);

    opts.print(
        "Figure 6 — pending interrupts reported per CPU by each scheme",
        &table,
    );
}
