//! Figure 3: latency of Socket-Async, Socket-Sync, RDMA-Async and
//! RDMA-Sync with increasing background threads.
//!
//! The paper's observation to reproduce: socket latencies grow linearly
//! with background load; the one-sided schemes stay flat.

use fgmon_bench::HarnessOpts;
use fgmon_cluster::{micro_latency, report::fmt_f, sweep_parallel, Table};
use fgmon_sim::SimDuration;
use fgmon_types::{OsConfig, Scheme};

fn main() {
    let opts = HarnessOpts::parse(10);
    let threads: Vec<u32> = if opts.quick {
        vec![0, 16, 48]
    } else {
        vec![0, 4, 8, 16, 24, 32, 48, 64]
    };

    let mut points = Vec::new();
    for &t in &threads {
        for &scheme in &Scheme::MICRO {
            points.push((scheme, t));
        }
    }

    let rows = sweep_parallel(points, |&(scheme, t)| {
        let mut w = micro_latency(
            scheme,
            t,
            true,
            SimDuration::from_millis(50),
            OsConfig::default(),
            opts.seed,
        );
        w.cluster.run_for(SimDuration::from_secs(opts.seconds));
        let h = w
            .cluster
            .recorder()
            .get_histogram(&format!("mon/latency/{}", scheme.label()))
            .expect("latency histogram");
        (scheme, t, h.mean() / 1e3, h.quantile(0.99) as f64 / 1e3)
    });

    let mut table = Table::new(vec![
        "bg threads",
        "Socket-Async (us)",
        "Socket-Sync (us)",
        "RDMA-Async (us)",
        "RDMA-Sync (us)",
    ]);
    for &t in &threads {
        let mut cells = vec![t.to_string()];
        for &scheme in &Scheme::MICRO {
            let (_, _, mean, _) = rows
                .iter()
                .find(|r| r.0 == scheme && r.1 == t)
                .expect("point computed");
            cells.push(fmt_f(*mean));
        }
        table.row(cells);
    }
    opts.print(
        "Figure 3 — monitoring latency vs. background threads (poll T=50ms)",
        &table,
    );
}
