//! # fgmon-bench — experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation (§5), each
//! printing the same rows/series the paper reports:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `fig3_latency` | Fig. 3 — monitoring latency vs. background threads |
//! | `fig4_granularity` | Fig. 4 — app slowdown vs. monitoring granularity |
//! | `fig5_accuracy` | Fig. 5 — accuracy of reported load information |
//! | `fig6_interrupts` | Fig. 6 — pending interrupts seen per CPU |
//! | `table1_rubis` | Table 1 — RUBiS response times, 5 schemes |
//! | `fig7_zipf` | Fig. 7 — throughput improvement vs. Zipf α |
//! | `fig8_ganglia` | Fig. 8 — RUBiS max response under gmetric monitoring |
//! | `fig9_fine_vs_coarse` | Fig. 9 — fine- vs. coarse-grained throughput |
//!
//! Run with `--quick` for a reduced sweep, `--seconds N` to change the
//! virtual duration per point, `--seed N` for a different seed.

/// Common command-line options for the harness binaries.
#[derive(Clone, Copy, Debug)]
pub struct HarnessOpts {
    /// Virtual seconds simulated per parameter point.
    pub seconds: u64,
    /// Base RNG seed.
    pub seed: u64,
    /// Reduced parameter sweep for smoke runs.
    pub quick: bool,
    /// Emit CSV instead of an aligned table.
    pub csv: bool,
}

impl HarnessOpts {
    /// Parse from `std::env::args()`. Unknown flags abort with usage.
    pub fn parse(default_seconds: u64) -> Self {
        let mut opts = HarnessOpts {
            seconds: default_seconds,
            seed: 42,
            quick: false,
            csv: false,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--seconds" => {
                    i += 1;
                    opts.seconds = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--quick" => opts.quick = true,
                "--csv" => opts.csv = true,
                "--help" | "-h" => usage(),
                _ => usage(),
            }
            i += 1;
        }
        opts
    }

    /// Render a finished table per the `--csv` flag.
    pub fn print(&self, title: &str, table: &fgmon_cluster::Table) {
        if self.csv {
            print!("{}", table.to_csv());
        } else {
            println!("{title}");
            println!();
            print!("{}", table.render());
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: <bin> [--seconds N] [--seed N] [--quick] [--csv]\n\
         Regenerates one table/figure of the CLUSTER'06 paper."
    );
    std::process::exit(2);
}

/// Percentage improvement of `value` over `baseline`.
pub fn improvement_pct(value: f64, baseline: f64) -> f64 {
    if baseline <= 0.0 {
        0.0
    } else {
        (value - baseline) / baseline * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        assert!((improvement_pct(125.0, 100.0) - 25.0).abs() < 1e-12);
        assert!((improvement_pct(75.0, 100.0) + 25.0).abs() < 1e-12);
        assert_eq!(improvement_pct(5.0, 0.0), 0.0);
    }
}
